//! Restricted plane sweep over x-sorted rectangle sequences (paper §2.2).
//!
//! Given two sequences `R` and `S` of rectangles, both sorted by their lower
//! x bound, [`sweep_pairs`] reports every intersecting pair `(i, j)` with
//! `R[i] ∩ S[j] ≠ ∅` — without building any dynamic sweep structure. The
//! sweep line visits the rectangles of `R ∪ S` in ascending `xl` order; at a
//! stop on a rectangle `t ∈ R` it scans `S` forward from the current frontier
//! until `S[j].xl > t.xu`, testing each scanned rectangle for intersection
//! (symmetrically for `t ∈ S`).
//!
//! The order in which pairs are produced is the **local plane-sweep order**:
//! it determines the order in which a spatial-join task descends into child
//! node pairs and therefore the order in which pages are read from secondary
//! storage. Reading pages in this order preserves spatial locality in the
//! LRU buffer (paper §2.2, Figure 1) and is the foundation of the static
//! range / round-robin task assignments of §3.
//!
//! Complexity: `O(k·(|R| + |S|) + #pairs)` where `k` is the average overlap
//! fan-out; no allocation beyond the output vector.

use crate::{Rect, SoaMbrs};

/// A pair of indices `(i, j)` into the two input sequences whose rectangles
/// intersect.
pub type SweepPair = (u32, u32);

/// Computes all intersecting pairs between two x-sorted rectangle sequences,
/// in local plane-sweep order. See the module docs for the algorithm.
///
/// Both inputs must be sorted by `xl` (ascending); this is debug-asserted.
pub fn sweep_pairs(r: &[Rect], s: &[Rect]) -> Vec<SweepPair> {
    let mut out = Vec::new();
    sweep_pairs_into(r, s, &mut out);
    out
}

/// As [`sweep_pairs`], but appends into a caller-provided buffer so hot join
/// loops can reuse one allocation ("workhorse collection").
pub fn sweep_pairs_into(r: &[Rect], s: &[Rect], out: &mut Vec<SweepPair>) {
    debug_assert!(is_sorted_by_xl(r), "R sequence not sorted by xl");
    debug_assert!(is_sorted_by_xl(s), "S sequence not sorted by xl");

    let mut i = 0usize; // frontier into r
    let mut j = 0usize; // frontier into s
    while i < r.len() && j < s.len() {
        if r[i].xl <= s[j].xl {
            // Sweep line stops on t = r[i]; scan S forward from j.
            let t = &r[i];
            let mut k = j;
            while k < s.len() && s[k].xl <= t.xu {
                if y_overlaps(t, &s[k]) {
                    out.push((i as u32, k as u32));
                }
                k += 1;
            }
            i += 1;
        } else {
            // Sweep line stops on t = s[j]; scan R forward from i.
            let t = &s[j];
            let mut k = i;
            while k < r.len() && r[k].xl <= t.xu {
                if y_overlaps(t, &r[k]) {
                    out.push((k as u32, j as u32));
                }
                k += 1;
            }
            j += 1;
        }
    }
}

/// Restriction of the sweep to rectangles intersecting a window: the
/// search-space restriction of [BKS 93]. Rectangles outside `window` cannot
/// contribute result pairs when `window` is the intersection of the parent
/// MBRs, so they are skipped before the sweep runs.
///
/// Returns the filtered, still-sorted subsequences as index vectors alongside
/// the pairs (indices refer to the *original* slices).
pub fn sweep_pairs_restricted(
    r: &[Rect],
    s: &[Rect],
    window: &Rect,
    scratch_r: &mut Vec<u32>,
    scratch_s: &mut Vec<u32>,
    out: &mut Vec<SweepPair>,
) {
    scratch_r.clear();
    scratch_s.clear();
    for (i, rect) in r.iter().enumerate() {
        if rect.intersects(window) {
            scratch_r.push(i as u32);
        }
    }
    for (j, rect) in s.iter().enumerate() {
        if rect.intersects(window) {
            scratch_s.push(j as u32);
        }
    }
    // Inline sweep over the filtered index lists (they remain xl-sorted).
    let mut i = 0usize;
    let mut j = 0usize;
    while i < scratch_r.len() && j < scratch_s.len() {
        let ri = scratch_r[i] as usize;
        let sj = scratch_s[j] as usize;
        if r[ri].xl <= s[sj].xl {
            let t = &r[ri];
            let mut k = j;
            while k < scratch_s.len() {
                let sk = scratch_s[k] as usize;
                if s[sk].xl > t.xu {
                    break;
                }
                if y_overlaps(t, &s[sk]) {
                    out.push((ri as u32, sk as u32));
                }
                k += 1;
            }
            i += 1;
        } else {
            let t = &s[sj];
            let mut k = i;
            while k < scratch_r.len() {
                let rk = scratch_r[k] as usize;
                if r[rk].xl > t.xu {
                    break;
                }
                if y_overlaps(t, &r[rk]) {
                    out.push((rk as u32, sj as u32));
                }
                k += 1;
            }
            j += 1;
        }
    }
}

/// How many survivor entries one sweep-scan probe tests at once. Four `f64`
/// lanes fill one AVX2 vector, and the average restricted scan is shorter
/// than this — most stops finish in a single probe.
const SCAN_LANES: usize = 4;

/// Reusable buffers for [`sweep_pairs_soa`]: the filtered index lists plus
/// the survivors' coordinates gathered into compact arrays
/// ([`SoaMbrs::filter_window_gather`]). One instance per worker amortizes
/// every allocation across the join.
#[derive(Debug, Default)]
pub struct SweepScratch {
    /// Indices of `r` entries intersecting the window (ascending, xl-sorted).
    pub filt_r: Vec<u32>,
    /// Indices of `s` entries intersecting the window (ascending, xl-sorted).
    pub filt_s: Vec<u32>,
    rxl: Vec<f64>,
    rxh: Vec<f64>,
    ryl: Vec<f64>,
    ryh: Vec<f64>,
    sxl: Vec<f64>,
    sxh: Vec<f64>,
    syl: Vec<f64>,
    syh: Vec<f64>,
}

/// Struct-of-arrays variant of [`sweep_pairs_restricted`]: same restriction,
/// same sweep, identical output — pairs, filtered index lists and their order
/// are byte-for-byte what the scalar path produces. The window filter runs
/// over frozen coordinate arrays in fixed-width branch-free chunks
/// ([`SoaMbrs::filter_window_gather`]) and gathers the survivors' coordinates
/// into compact arrays as it goes; the sweep's forward scans then probe the
/// compacted lanes [`SCAN_LANES`] at a time — branch-free x/y tests into a
/// bitmask, matches popped in ascending order — so a typical stop costs one
/// probe instead of a data-dependent branch per scanned entry.
///
/// Both inputs must be xl-sorted in entry order, exactly as for the scalar
/// sweep.
pub fn sweep_pairs_soa(
    r: &SoaMbrs,
    s: &SoaMbrs,
    window: &Rect,
    scratch: &mut SweepScratch,
    out: &mut Vec<SweepPair>,
) {
    // One AVX2 dispatch for the whole kernel call: both window filters and
    // the sweep inline into the feature-gated copy, so per-node-pair cost
    // carries a single predicted branch instead of per-filter dispatches
    // and opaque function calls.
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: guarded by the runtime AVX2 check above.
        unsafe { sweep_pairs_soa_avx2(r, s, window, scratch, out) };
        return;
    }
    sweep_pairs_soa_body(r, s, window, scratch, out);
}

/// A borrowed xl-sorted coordinate run — column slices of a larger SoA
/// layout, typically one cell of a partitioned join. All four slices must
/// have the same length.
#[derive(Debug, Clone, Copy)]
pub struct SoaRun<'a> {
    /// Lower x bounds, xl-sorted.
    pub xl: &'a [f64],
    /// Upper x bounds, by entry position.
    pub xh: &'a [f64],
    /// Lower y bounds, by entry position.
    pub yl: &'a [f64],
    /// Upper y bounds, by entry position.
    pub yh: &'a [f64],
}

impl SoaRun<'_> {
    /// Number of rectangles in the run.
    pub fn len(&self) -> usize {
        self.xl.len()
    }

    /// Whether the run is empty.
    pub fn is_empty(&self) -> bool {
        self.xl.is_empty()
    }
}

/// [`sweep_pairs_soa`] without the window filter: both runs participate
/// wholesale. This is the partition-join kernel — every item replicated
/// into a grid cell intersects that cell by construction, so a window pass
/// over the cell would accept everything and its per-entry compares (and
/// the gather of an owned [`SoaMbrs`] per cell before it) are pure
/// overhead. The slices are memcpy'd into `scratch` (the sweep needs
/// sentinel padding), index lists become the identity, and the identical
/// sweep core runs — emission order matches [`sweep_pairs_soa`] over the
/// same entries with a covering window, with positions relative to each
/// run's start. Appends to `out` without clearing it.
///
/// Both runs must be xl-sorted, exactly as for [`sweep_pairs_soa`].
pub fn sweep_pairs_soa_runs(
    r: &SoaRun<'_>,
    s: &SoaRun<'_>,
    scratch: &mut SweepScratch,
    out: &mut Vec<SweepPair>,
) {
    let (n, m) = (r.len(), s.len());
    if n == 0 || m == 0 {
        return;
    }
    scratch.filt_r.clear();
    scratch.filt_r.extend(0..n as u32);
    scratch.filt_s.clear();
    scratch.filt_s.extend(0..m as u32);
    let copy = |dst: &mut Vec<f64>, src: &[f64]| {
        dst.clear();
        dst.extend_from_slice(src);
    };
    copy(&mut scratch.rxl, r.xl);
    copy(&mut scratch.rxh, r.xh);
    copy(&mut scratch.ryl, r.yl);
    copy(&mut scratch.ryh, r.yh);
    copy(&mut scratch.sxl, s.xl);
    copy(&mut scratch.sxh, s.xh);
    copy(&mut scratch.syl, s.yl);
    copy(&mut scratch.syh, s.yh);
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: guarded by the runtime AVX2 check above.
        unsafe { sweep_scratch_avx2(scratch, n, m, out) };
        return;
    }
    sweep_scratch_body(scratch, n, m, out);
}

/// Explicit-intrinsics AVX2 copy of [`sweep_pairs_soa_body`]: the window
/// filters run their packed-compare variant and each forward scan becomes a
/// 4-lane probe — one packed x-gate, one packed y-overlap test, survivors
/// popped from the combined movemask in ascending lane order. Emission order
/// and accept/reject decisions are identical to the scalar sweep.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sweep_pairs_soa_avx2(
    r: &SoaMbrs,
    s: &SoaMbrs,
    window: &Rect,
    scratch: &mut SweepScratch,
    out: &mut Vec<SweepPair>,
) {
    // SAFETY: AVX2 is guaranteed by the dispatching caller.
    unsafe {
        r.filter_window_gather_avx2(
            window,
            &mut scratch.filt_r,
            &mut scratch.rxl,
            &mut scratch.rxh,
            &mut scratch.ryl,
            &mut scratch.ryh,
        );
        s.filter_window_gather_avx2(
            window,
            &mut scratch.filt_s,
            &mut scratch.sxl,
            &mut scratch.sxh,
            &mut scratch.syl,
            &mut scratch.syh,
        );
    }
    let (n, m) = (scratch.filt_r.len(), scratch.filt_s.len());
    // SAFETY: AVX2 is guaranteed by the dispatching caller.
    unsafe { sweep_scratch_avx2(scratch, n, m, out) }
}

/// The post-filter half of [`sweep_pairs_soa_avx2`]: sentinel-pads the
/// compacted streams already sitting in `scratch` and sweeps them. Split
/// out so [`sweep_pairs_soa_runs`] can feed pre-sorted runs straight in
/// without a window-filter pass.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sweep_scratch_avx2(
    scratch: &mut SweepScratch,
    n: usize,
    m: usize,
    out: &mut Vec<SweepPair>,
) {
    use core::arch::x86_64::*;
    if n == 0 || m == 0 {
        return;
    }
    // Sentinel-pad the scanned streams: `+inf` fails the x-gate in every
    // sentinel lane, and a failed gate also vetoes the pair test. A probe at
    // position `k` reads lanes `k..k + SCAN_LANES`; `k` never exceeds the
    // survivor count (the gate of the last lane must pass, on a real entry,
    // for `k` to advance), so padded length `len + SCAN_LANES` covers every
    // probe.
    for _ in 0..SCAN_LANES {
        scratch.rxl.push(f64::INFINITY);
        scratch.ryl.push(0.0);
        scratch.ryh.push(0.0);
        scratch.sxl.push(f64::INFINITY);
        scratch.syl.push(0.0);
        scratch.syh.push(0.0);
    }
    let SweepScratch {
        filt_r,
        filt_s,
        rxl,
        rxh,
        ryl,
        ryh,
        sxl,
        sxh,
        syl,
        syh,
    } = scratch;
    let all_gates = (1u32 << SCAN_LANES) - 1;
    let mut i = 0usize;
    let mut j = 0usize;
    while i < n && j < m {
        if rxl[i] <= sxl[j] {
            let (t_xu, t_yl, t_yu) = (rxh[i], ryl[i], ryh[i]);
            let ri = filt_r[i];
            // SAFETY: loads stay within the padded streams (see above).
            unsafe {
                let xu_v = _mm256_set1_pd(t_xu);
                let yl_v = _mm256_set1_pd(t_yl);
                let yu_v = _mm256_set1_pd(t_yu);
                let mut k = j;
                loop {
                    let gate =
                        _mm256_cmp_pd::<_CMP_LE_OQ>(_mm256_loadu_pd(sxl.as_ptr().add(k)), xu_v);
                    let ylo =
                        _mm256_cmp_pd::<_CMP_LE_OQ>(_mm256_loadu_pd(syl.as_ptr().add(k)), yu_v);
                    let yhi =
                        _mm256_cmp_pd::<_CMP_GE_OQ>(_mm256_loadu_pd(syh.as_ptr().add(k)), yl_v);
                    let gates = _mm256_movemask_pd(gate) as u32;
                    let mut mask = gates & _mm256_movemask_pd(_mm256_and_pd(ylo, yhi)) as u32;
                    while mask != 0 {
                        let l = (mask.trailing_zeros() & 3) as usize;
                        out.push((ri, filt_s[k + l]));
                        mask &= mask - 1;
                    }
                    if gates != all_gates {
                        break;
                    }
                    k += SCAN_LANES;
                }
            }
            i += 1;
        } else {
            let (t_xu, t_yl, t_yu) = (sxh[j], syl[j], syh[j]);
            let sj = filt_s[j];
            // SAFETY: loads stay within the padded streams (see above).
            unsafe {
                let xu_v = _mm256_set1_pd(t_xu);
                let yl_v = _mm256_set1_pd(t_yl);
                let yu_v = _mm256_set1_pd(t_yu);
                let mut k = i;
                loop {
                    let gate =
                        _mm256_cmp_pd::<_CMP_LE_OQ>(_mm256_loadu_pd(rxl.as_ptr().add(k)), xu_v);
                    let ylo =
                        _mm256_cmp_pd::<_CMP_LE_OQ>(_mm256_loadu_pd(ryl.as_ptr().add(k)), yu_v);
                    let yhi =
                        _mm256_cmp_pd::<_CMP_GE_OQ>(_mm256_loadu_pd(ryh.as_ptr().add(k)), yl_v);
                    let gates = _mm256_movemask_pd(gate) as u32;
                    let mut mask = gates & _mm256_movemask_pd(_mm256_and_pd(ylo, yhi)) as u32;
                    while mask != 0 {
                        let l = (mask.trailing_zeros() & 3) as usize;
                        out.push((filt_r[k + l], sj));
                        mask &= mask - 1;
                    }
                    if gates != all_gates {
                        break;
                    }
                    k += SCAN_LANES;
                }
            }
            j += 1;
        }
    }
}

/// Reborrows `a[k..k + SCAN_LANES]` as a fixed-size lane block: one range
/// check, then check-free lane indexing.
#[inline(always)]
fn lanes(a: &[f64], k: usize) -> &[f64; SCAN_LANES] {
    a[k..k + SCAN_LANES]
        .try_into()
        .expect("slice of SCAN_LANES length")
}

#[inline(always)]
fn sweep_pairs_soa_body(
    r: &SoaMbrs,
    s: &SoaMbrs,
    window: &Rect,
    scratch: &mut SweepScratch,
    out: &mut Vec<SweepPair>,
) {
    r.filter_window_gather_body(
        window,
        &mut scratch.filt_r,
        &mut scratch.rxl,
        &mut scratch.rxh,
        &mut scratch.ryl,
        &mut scratch.ryh,
    );
    s.filter_window_gather_body(
        window,
        &mut scratch.filt_s,
        &mut scratch.sxl,
        &mut scratch.sxh,
        &mut scratch.syl,
        &mut scratch.syh,
    );
    let (n, m) = (scratch.filt_r.len(), scratch.filt_s.len());
    sweep_scratch_body(scratch, n, m, out);
}

/// The post-filter half of [`sweep_pairs_soa_body`] — see
/// [`sweep_scratch_avx2`] for why it is split out.
fn sweep_scratch_body(scratch: &mut SweepScratch, n: usize, m: usize, out: &mut Vec<SweepPair>) {
    if n == 0 || m == 0 {
        return;
    }
    // Sentinel-pad the scanned streams so the lane probes below never read
    // past the survivors: `+inf` fails the `xl <= t.xu` gate in every
    // sentinel lane, and a failed gate also vetoes the pair test, so the
    // y sentinels' values are irrelevant.
    for _ in 0..SCAN_LANES {
        scratch.rxl.push(f64::INFINITY);
        scratch.ryl.push(0.0);
        scratch.ryh.push(0.0);
        scratch.sxl.push(f64::INFINITY);
        scratch.syl.push(0.0);
        scratch.syh.push(0.0);
    }
    let SweepScratch {
        filt_r,
        filt_s,
        rxl,
        rxh,
        ryl,
        ryh,
        sxl,
        sxh,
        syl,
        syh,
    } = scratch;
    // Inline sweep over the compacted survivors (they remain xl-sorted).
    // A stop on r[i] probes s's streams SCAN_LANES at a time: branch-free
    // x-gate and y-overlap tests folded into a bitmask, survivors popped in
    // ascending lane order — exactly the scalar scan's emission order. The
    // x-gate of the last lane decides whether the scan continues, and the
    // sentinel padding guarantees every probe is in bounds.
    let mut i = 0usize;
    let mut j = 0usize;
    while i < n && j < m {
        if rxl[i] <= sxl[j] {
            let (t_xu, t_yl, t_yu) = (rxh[i], ryl[i], ryh[i]);
            let ri = filt_r[i];
            let mut k = j;
            while sxl[k] <= t_xu {
                let (lx, ll, lh) = (lanes(sxl, k), lanes(syl, k), lanes(syh, k));
                let mut gate = [false; SCAN_LANES];
                let mut hit = [false; SCAN_LANES];
                for l in 0..SCAN_LANES {
                    gate[l] = lx[l] <= t_xu;
                    hit[l] = gate[l] & (ll[l] <= t_yu) & (lh[l] >= t_yl);
                }
                let mut mask = 0u32;
                for (l, &h) in hit.iter().enumerate() {
                    mask |= (h as u32) << l;
                }
                while mask != 0 {
                    let l = (mask.trailing_zeros() & 3) as usize;
                    out.push((ri, filt_s[k + l]));
                    mask &= mask - 1;
                }
                if !gate[SCAN_LANES - 1] {
                    break;
                }
                k += SCAN_LANES;
            }
            i += 1;
        } else {
            let (t_xu, t_yl, t_yu) = (sxh[j], syl[j], syh[j]);
            let sj = filt_s[j];
            let mut k = i;
            while rxl[k] <= t_xu {
                let (lx, ll, lh) = (lanes(rxl, k), lanes(ryl, k), lanes(ryh, k));
                let mut gate = [false; SCAN_LANES];
                let mut hit = [false; SCAN_LANES];
                for l in 0..SCAN_LANES {
                    gate[l] = lx[l] <= t_xu;
                    hit[l] = gate[l] & (ll[l] <= t_yu) & (lh[l] >= t_yl);
                }
                let mut mask = 0u32;
                for (l, &h) in hit.iter().enumerate() {
                    mask |= (h as u32) << l;
                }
                while mask != 0 {
                    let l = (mask.trailing_zeros() & 3) as usize;
                    out.push((filt_r[k + l], sj));
                    mask &= mask - 1;
                }
                if !gate[SCAN_LANES - 1] {
                    break;
                }
                k += SCAN_LANES;
            }
            j += 1;
        }
    }
}

/// Brute-force reference: every pair tested, output in row-major order.
/// Used by tests and benchmarks as the correctness baseline.
pub fn nested_loop_pairs(r: &[Rect], s: &[Rect]) -> Vec<SweepPair> {
    let mut out = Vec::new();
    for (i, a) in r.iter().enumerate() {
        for (j, b) in s.iter().enumerate() {
            if a.intersects(b) {
                out.push((i as u32, j as u32));
            }
        }
    }
    out
}

#[inline]
fn y_overlaps(a: &Rect, b: &Rect) -> bool {
    a.yl <= b.yu && b.yl <= a.yu
}

fn is_sorted_by_xl(v: &[Rect]) -> bool {
    v.windows(2).all(|w| w[0].xl <= w[1].xl)
}

/// Sorts a rectangle sequence by `xl`, returning the permutation applied, so
/// callers can map sweep indices back to original entries.
pub fn sort_by_xl(rects: &mut [Rect]) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..rects.len() as u32).collect();
    perm.sort_by(|&a, &b| {
        rects[a as usize]
            .xl
            .partial_cmp(&rects[b as usize].xl)
            .expect("NaN coordinate")
    });
    let sorted: Vec<Rect> = perm.iter().map(|&k| rects[k as usize]).collect();
    rects.copy_from_slice(&sorted);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(xl: f64, yl: f64, xu: f64, yu: f64) -> Rect {
        Rect::new(xl, yl, xu, yu)
    }

    fn as_set(pairs: &[SweepPair]) -> std::collections::BTreeSet<SweepPair> {
        pairs.iter().copied().collect()
    }

    /// Reconstruction of Figure 1: R = ⟨r1, r2, r3⟩, S = ⟨s1, s2⟩ laid out so
    /// the sweep line stops at r1, s1, r2, s2, r3 in that order and the pair
    /// tests happen in the figure's local plane-sweep order.
    #[test]
    fn figure1_order() {
        let rs = [
            r(0.0, 2.0, 3.0, 4.0), // r1
            r(2.0, 1.0, 5.0, 3.0), // r2
            r(6.0, 2.0, 8.0, 4.0), // r3
        ];
        let ss = [
            r(1.0, 3.0, 4.0, 5.0), // s1
            r(4.5, 1.5, 7.0, 3.0), // s2
        ];
        let pairs = sweep_pairs(&rs, &ss);
        // Stops: r1 (tests s1) → s1 (tests r2) → r2 (tests s2) → s2 (tests r3).
        assert_eq!(pairs, vec![(0, 0), (1, 0), (1, 1), (2, 1)]);
        // The order is exactly non-decreasing in sweep position: each pair's
        // later-starting rectangle advances monotonically.
        assert_eq!(as_set(&pairs), as_set(&nested_loop_pairs(&rs, &ss)));
    }

    #[test]
    fn empty_inputs() {
        assert!(sweep_pairs(&[], &[]).is_empty());
        assert!(sweep_pairs(&[r(0.0, 0.0, 1.0, 1.0)], &[]).is_empty());
        assert!(sweep_pairs(&[], &[r(0.0, 0.0, 1.0, 1.0)]).is_empty());
    }

    #[test]
    fn no_intersections() {
        let rs = [r(0.0, 0.0, 1.0, 1.0), r(2.0, 0.0, 3.0, 1.0)];
        let ss = [r(0.0, 5.0, 3.0, 6.0)];
        assert!(sweep_pairs(&rs, &ss).is_empty());
    }

    #[test]
    fn x_overlap_without_y_overlap_is_rejected() {
        let rs = [r(0.0, 0.0, 10.0, 1.0)];
        let ss = [r(1.0, 5.0, 2.0, 6.0)];
        assert!(sweep_pairs(&rs, &ss).is_empty());
    }

    #[test]
    fn identical_xl_values() {
        // Ties on xl must not lose pairs.
        let rs = [r(0.0, 0.0, 2.0, 2.0), r(0.0, 3.0, 2.0, 5.0)];
        let ss = [r(0.0, 1.0, 2.0, 4.0)];
        let pairs = sweep_pairs(&rs, &ss);
        assert_eq!(as_set(&pairs), as_set(&[(0, 0), (1, 0)]));
    }

    #[test]
    fn matches_nested_loop_on_grid() {
        // Overlapping lattice: every adjacent pair intersects.
        let mut rs = Vec::new();
        let mut ss = Vec::new();
        for k in 0..20 {
            let x = k as f64 * 0.5;
            rs.push(r(x, 0.0, x + 1.0, 1.0));
            ss.push(r(x + 0.25, 0.5, x + 0.75, 1.5));
        }
        let pairs = sweep_pairs(&rs, &ss);
        assert_eq!(as_set(&pairs), as_set(&nested_loop_pairs(&rs, &ss)));
    }

    #[test]
    fn restricted_sweep_filters_by_window() {
        let rs = [r(0.0, 0.0, 1.0, 1.0), r(5.0, 0.0, 6.0, 1.0)];
        let ss = [r(0.5, 0.5, 1.5, 1.5), r(5.5, 0.5, 6.5, 1.5)];
        let window = r(0.0, 0.0, 2.0, 2.0);
        let (mut sr, mut ssc, mut out) = (Vec::new(), Vec::new(), Vec::new());
        sweep_pairs_restricted(&rs, &ss, &window, &mut sr, &mut ssc, &mut out);
        // Only the left pair survives the restriction.
        assert_eq!(out, vec![(0, 0)]);
        assert_eq!(sr, vec![0]);
        assert_eq!(ssc, vec![0]);
    }

    #[test]
    fn restricted_equals_unrestricted_with_covering_window() {
        let rs = [r(0.0, 0.0, 2.0, 2.0), r(1.0, 1.0, 3.0, 3.0)];
        let ss = [r(0.5, 0.5, 1.5, 1.5), r(2.5, 2.5, 4.0, 4.0)];
        let window = r(-10.0, -10.0, 10.0, 10.0);
        let (mut sr, mut ssc, mut out) = (Vec::new(), Vec::new(), Vec::new());
        sweep_pairs_restricted(&rs, &ss, &window, &mut sr, &mut ssc, &mut out);
        assert_eq!(out, sweep_pairs(&rs, &ss));
    }

    #[test]
    fn soa_sweep_matches_scalar_restricted() {
        // Dense lattice with xl ties plus a disjoint far cluster; several
        // windows including degenerate and disjoint ones.
        let mut rs = Vec::new();
        let mut ss = Vec::new();
        for k in 0..40 {
            let x = (k / 2) as f64 * 0.5;
            rs.push(r(x, 0.0, x + 1.0, 1.0));
            ss.push(r(x + 0.25, 0.5, x + 0.75, 1.5));
        }
        rs.push(r(100.0, 100.0, 101.0, 101.0));
        ss.push(r(100.5, 100.5, 101.5, 101.5));
        let soa_r = SoaMbrs::from_rects(&rs);
        let soa_s = SoaMbrs::from_rects(&ss);
        for window in [
            r(-10.0, -10.0, 200.0, 200.0),
            r(2.0, 0.0, 4.0, 1.0),
            r(3.0, 0.5, 3.0, 0.5),
            r(-5.0, -5.0, -1.0, -1.0),
        ] {
            let (mut fr, mut fs, mut scalar) = (Vec::new(), Vec::new(), Vec::new());
            sweep_pairs_restricted(&rs, &ss, &window, &mut fr, &mut fs, &mut scalar);
            let mut scratch = SweepScratch::default();
            let mut soa = Vec::new();
            sweep_pairs_soa(&soa_r, &soa_s, &window, &mut scratch, &mut soa);
            assert_eq!(soa, scalar, "pairs diverge for {window:?}");
            assert_eq!(scratch.filt_r, fr, "R filter diverges for {window:?}");
            assert_eq!(scratch.filt_s, fs, "S filter diverges for {window:?}");
        }
    }

    #[test]
    fn runs_sweep_matches_windowed_soa_on_full_runs() {
        // Same lattice as above; the runs variant must emit exactly what
        // the windowed variant does under a covering window, for whole
        // runs and for arbitrary sub-runs (a cell of a larger layout).
        let mut rs = Vec::new();
        let mut ss = Vec::new();
        for k in 0..40 {
            let x = (k / 2) as f64 * 0.5;
            rs.push(r(x, 0.0, x + 1.0, 1.0));
            ss.push(r(x + 0.25, 0.5, x + 0.75, 1.5));
        }
        let cover = r(-10.0, -10.0, 200.0, 200.0);
        for (lo_r, hi_r, lo_s, hi_s) in [(0, 40, 0, 40), (5, 25, 10, 30), (0, 0, 0, 40)] {
            let sub_r = &rs[lo_r..hi_r];
            let sub_s = &ss[lo_s..hi_s];
            let soa_r = SoaMbrs::from_rects(sub_r);
            let soa_s = SoaMbrs::from_rects(sub_s);
            let mut scratch = SweepScratch::default();
            let mut want = Vec::new();
            sweep_pairs_soa(&soa_r, &soa_s, &cover, &mut scratch, &mut want);
            let run_r = SoaRun {
                xl: soa_r.xl(),
                xh: soa_r.xh(),
                yl: soa_r.yl(),
                yh: soa_r.yh(),
            };
            let run_s = SoaRun {
                xl: soa_s.xl(),
                xh: soa_s.xh(),
                yl: soa_s.yl(),
                yh: soa_s.yh(),
            };
            let mut got = Vec::new();
            sweep_pairs_soa_runs(&run_r, &run_s, &mut scratch, &mut got);
            assert_eq!(
                got, want,
                "runs sweep diverges for {lo_r}..{hi_r} x {lo_s}..{hi_s}"
            );
        }
    }

    #[test]
    fn sort_by_xl_returns_permutation() {
        let mut v = vec![
            r(3.0, 0.0, 4.0, 1.0),
            r(1.0, 0.0, 2.0, 1.0),
            r(2.0, 0.0, 3.0, 1.0),
        ];
        let perm = sort_by_xl(&mut v);
        assert_eq!(perm, vec![1, 2, 0]);
        assert!(v.windows(2).all(|w| w[0].xl <= w[1].xl));
    }

    #[test]
    fn sweep_order_is_monotone_in_x() {
        // Pairs must be emitted so that the sweep-line stop position — the
        // smaller xl of each pair — never decreases. That is what "preserves
        // spatial locality" means.
        let mut rs = Vec::new();
        let mut ss = Vec::new();
        for k in 0..30 {
            let x = k as f64;
            rs.push(r(x, 0.0, x + 2.0, 2.0));
            ss.push(r(x + 0.5, 1.0, x + 1.5, 3.0));
        }
        let pairs = sweep_pairs(&rs, &ss);
        let stops: Vec<f64> = pairs
            .iter()
            .map(|&(i, j)| rs[i as usize].xl.min(ss[j as usize].xl))
            .collect();
        assert!(
            stops.windows(2).all(|w| w[0] <= w[1]),
            "not monotone: {stops:?}"
        );
        assert!(!pairs.is_empty());
    }
}
