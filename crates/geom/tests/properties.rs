//! Property-based tests for the geometry crate.

use proptest::prelude::*;
use psj_geom::sweep::{nested_loop_pairs, sort_by_xl, sweep_pairs};
use psj_geom::{Point, Polygon, Polyline, Rect, Segment};
use std::collections::BTreeSet;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (
        -100.0f64..100.0,
        -100.0f64..100.0,
        0.0f64..50.0,
        0.0f64..50.0,
    )
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

fn arb_point() -> impl Strategy<Value = Point> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Segment::new(a, b))
}

proptest! {
    #[test]
    fn intersects_is_symmetric(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn intersection_consistent_with_predicate(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersection(&b).is_some(), a.intersects(&b));
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains(&i));
            prop_assert!(b.contains(&i));
        }
    }

    #[test]
    fn union_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains(&a));
        prop_assert!(u.contains(&b));
        // Union is the *smallest* covering rect: every bound is attained.
        prop_assert!(u.xl == a.xl || u.xl == b.xl);
        prop_assert!(u.xu == a.xu || u.xu == b.xu);
        prop_assert!(u.yl == a.yl || u.yl == b.yl);
        prop_assert!(u.yu == a.yu || u.yu == b.yu);
    }

    #[test]
    fn enlargement_nonnegative(a in arb_rect(), b in arb_rect()) {
        prop_assert!(a.enlargement(&b) >= 0.0);
        if a.contains(&b) {
            prop_assert_eq!(a.enlargement(&b), 0.0);
        }
    }

    #[test]
    fn overlap_area_bounded(a in arb_rect(), b in arb_rect()) {
        let o = a.overlap_area(&b);
        prop_assert!(o >= 0.0);
        prop_assert!(o <= a.area() + 1e-9);
        prop_assert!(o <= b.area() + 1e-9);
    }

    #[test]
    fn overlap_degree_in_unit_interval(a in arb_rect(), b in arb_rect()) {
        let d = a.overlap_degree(&b);
        prop_assert!((0.0..=1.0).contains(&d), "degree {} out of range", d);
        prop_assert_eq!(d > 0.0, a.overlap_area(&b) > 0.0 ||
            (a.intersects(&b) && (a.area() == 0.0 || b.area() == 0.0)));
    }

    #[test]
    fn sweep_equals_nested_loop(
        mut r in prop::collection::vec(arb_rect(), 0..60),
        mut s in prop::collection::vec(arb_rect(), 0..60),
    ) {
        sort_by_xl(&mut r);
        sort_by_xl(&mut s);
        let a: BTreeSet<_> = sweep_pairs(&r, &s).into_iter().collect();
        let b: BTreeSet<_> = nested_loop_pairs(&r, &s).into_iter().collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn sweep_emits_no_duplicates(
        mut r in prop::collection::vec(arb_rect(), 0..60),
        mut s in prop::collection::vec(arb_rect(), 0..60),
    ) {
        sort_by_xl(&mut r);
        sort_by_xl(&mut s);
        let pairs = sweep_pairs(&r, &s);
        let set: BTreeSet<_> = pairs.iter().copied().collect();
        prop_assert_eq!(set.len(), pairs.len());
    }

    #[test]
    fn segment_intersection_symmetric(a in arb_segment(), b in arb_segment()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn intersecting_segments_have_intersecting_mbrs(a in arb_segment(), b in arb_segment()) {
        if a.intersects(&b) {
            prop_assert!(a.mbr().intersects(&b.mbr()));
        }
    }

    #[test]
    fn segment_self_intersects(a in arb_segment()) {
        prop_assert!(a.intersects(&a));
    }

    #[test]
    fn polyline_mbr_contains_segment_mbrs(
        pts in prop::collection::vec(arb_point(), 2..12),
    ) {
        let pl = Polyline::new(pts);
        let m = pl.mbr();
        for s in pl.segments() {
            prop_assert!(m.contains(&s.mbr()));
        }
    }

    #[test]
    fn rect_as_polygon_agrees_with_rect_ops(a in arb_rect(), b in arb_rect()) {
        // A rectangle converted to a polygon ring must agree with the
        // native Rect operations.
        let poly = |r: &Rect| Polygon::new(vec![
            Point::new(r.xl, r.yl),
            Point::new(r.xu, r.yl),
            Point::new(r.xu, r.yu),
            Point::new(r.xl, r.yu),
        ]);
        let pa = poly(&a);
        let pb = poly(&b);
        prop_assert!((pa.area() - a.area()).abs() < 1e-9);
        prop_assert_eq!(pa.mbr(), a);
        prop_assert_eq!(pa.intersects(&pb), a.intersects(&b));
        prop_assert_eq!(pa.contains_polygon(&pb), a.contains(&b));
    }

    #[test]
    fn polygon_vertices_are_contained(
        pts in prop::collection::vec(arb_point(), 3..10),
    ) {
        let poly = Polygon::new(pts.clone());
        for p in &pts {
            prop_assert!(poly.contains_point(p), "vertex {p:?} not contained");
        }
    }

    #[test]
    fn polygon_centroidish_point_inside_mbr_rule(
        cx in -50.0f64..50.0,
        cy in -50.0f64..50.0,
        r in 1.0f64..20.0,
        sides in 3usize..12,
    ) {
        // Regular polygon: the center is inside; points far outside are not.
        let ring: Vec<Point> = (0..sides)
            .map(|i| {
                let a = i as f64 / sides as f64 * std::f64::consts::TAU;
                Point::new(cx + r * a.cos(), cy + r * a.sin())
            })
            .collect();
        let poly = Polygon::new(ring);
        prop_assert!(poly.contains_point(&Point::new(cx, cy)));
        prop_assert!(!poly.contains_point(&Point::new(cx + 3.0 * r, cy)));
        prop_assert!((poly.area() - 0.5 * sides as f64 * r * r
            * (std::f64::consts::TAU / sides as f64).sin()).abs() < 1e-6);
    }

    #[test]
    fn polyline_intersection_implies_mbr_overlap(
        a in prop::collection::vec(arb_point(), 2..8),
        b in prop::collection::vec(arb_point(), 2..8),
    ) {
        let pa = Polyline::new(a);
        let pb = Polyline::new(b);
        if pa.intersects(&pb) {
            prop_assert!(pa.mbr().intersects(&pb.mbr()));
        }
        prop_assert_eq!(pa.intersects(&pb), pb.intersects(&pa));
    }
}
