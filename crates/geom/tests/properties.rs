//! Property-based tests for the geometry crate.

use proptest::prelude::*;
use psj_geom::sweep::{
    nested_loop_pairs, sort_by_xl, sweep_pairs, sweep_pairs_restricted, sweep_pairs_soa,
    SweepScratch,
};
use psj_geom::{rect_distance, Point, Polygon, Polyline, Rect, Segment, SoaMbrs};
use std::collections::BTreeSet;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (
        -100.0f64..100.0,
        -100.0f64..100.0,
        0.0f64..50.0,
        0.0f64..50.0,
    )
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

fn arb_point() -> impl Strategy<Value = Point> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Segment::new(a, b))
}

proptest! {
    #[test]
    fn intersects_is_symmetric(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn intersection_consistent_with_predicate(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersection(&b).is_some(), a.intersects(&b));
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains(&i));
            prop_assert!(b.contains(&i));
        }
    }

    #[test]
    fn union_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains(&a));
        prop_assert!(u.contains(&b));
        // Union is the *smallest* covering rect: every bound is attained.
        prop_assert!(u.xl == a.xl || u.xl == b.xl);
        prop_assert!(u.xu == a.xu || u.xu == b.xu);
        prop_assert!(u.yl == a.yl || u.yl == b.yl);
        prop_assert!(u.yu == a.yu || u.yu == b.yu);
    }

    #[test]
    fn enlargement_nonnegative(a in arb_rect(), b in arb_rect()) {
        prop_assert!(a.enlargement(&b) >= 0.0);
        if a.contains(&b) {
            prop_assert_eq!(a.enlargement(&b), 0.0);
        }
    }

    #[test]
    fn overlap_area_bounded(a in arb_rect(), b in arb_rect()) {
        let o = a.overlap_area(&b);
        prop_assert!(o >= 0.0);
        prop_assert!(o <= a.area() + 1e-9);
        prop_assert!(o <= b.area() + 1e-9);
    }

    #[test]
    fn overlap_degree_in_unit_interval(a in arb_rect(), b in arb_rect()) {
        let d = a.overlap_degree(&b);
        prop_assert!((0.0..=1.0).contains(&d), "degree {} out of range", d);
        prop_assert_eq!(d > 0.0, a.overlap_area(&b) > 0.0 ||
            (a.intersects(&b) && (a.area() == 0.0 || b.area() == 0.0)));
    }

    #[test]
    fn sweep_equals_nested_loop(
        mut r in prop::collection::vec(arb_rect(), 0..60),
        mut s in prop::collection::vec(arb_rect(), 0..60),
    ) {
        sort_by_xl(&mut r);
        sort_by_xl(&mut s);
        let a: BTreeSet<_> = sweep_pairs(&r, &s).into_iter().collect();
        let b: BTreeSet<_> = nested_loop_pairs(&r, &s).into_iter().collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn sweep_emits_no_duplicates(
        mut r in prop::collection::vec(arb_rect(), 0..60),
        mut s in prop::collection::vec(arb_rect(), 0..60),
    ) {
        sort_by_xl(&mut r);
        sort_by_xl(&mut s);
        let pairs = sweep_pairs(&r, &s);
        let set: BTreeSet<_> = pairs.iter().copied().collect();
        prop_assert_eq!(set.len(), pairs.len());
    }

    #[test]
    fn segment_intersection_symmetric(a in arb_segment(), b in arb_segment()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn intersecting_segments_have_intersecting_mbrs(a in arb_segment(), b in arb_segment()) {
        if a.intersects(&b) {
            prop_assert!(a.mbr().intersects(&b.mbr()));
        }
    }

    #[test]
    fn segment_self_intersects(a in arb_segment()) {
        prop_assert!(a.intersects(&a));
    }

    #[test]
    fn polyline_mbr_contains_segment_mbrs(
        pts in prop::collection::vec(arb_point(), 2..12),
    ) {
        let pl = Polyline::new(pts);
        let m = pl.mbr();
        for s in pl.segments() {
            prop_assert!(m.contains(&s.mbr()));
        }
    }

    #[test]
    fn rect_as_polygon_agrees_with_rect_ops(a in arb_rect(), b in arb_rect()) {
        // A rectangle converted to a polygon ring must agree with the
        // native Rect operations.
        let poly = |r: &Rect| Polygon::new(vec![
            Point::new(r.xl, r.yl),
            Point::new(r.xu, r.yl),
            Point::new(r.xu, r.yu),
            Point::new(r.xl, r.yu),
        ]);
        let pa = poly(&a);
        let pb = poly(&b);
        prop_assert!((pa.area() - a.area()).abs() < 1e-9);
        prop_assert_eq!(pa.mbr(), a);
        prop_assert_eq!(pa.intersects(&pb), a.intersects(&b));
        prop_assert_eq!(pa.contains_polygon(&pb), a.contains(&b));
    }

    #[test]
    fn polygon_vertices_are_contained(
        pts in prop::collection::vec(arb_point(), 3..10),
    ) {
        let poly = Polygon::new(pts.clone());
        for p in &pts {
            prop_assert!(poly.contains_point(p), "vertex {p:?} not contained");
        }
    }

    #[test]
    fn polygon_centroidish_point_inside_mbr_rule(
        cx in -50.0f64..50.0,
        cy in -50.0f64..50.0,
        r in 1.0f64..20.0,
        sides in 3usize..12,
    ) {
        // Regular polygon: the center is inside; points far outside are not.
        let ring: Vec<Point> = (0..sides)
            .map(|i| {
                let a = i as f64 / sides as f64 * std::f64::consts::TAU;
                Point::new(cx + r * a.cos(), cy + r * a.sin())
            })
            .collect();
        let poly = Polygon::new(ring);
        prop_assert!(poly.contains_point(&Point::new(cx, cy)));
        prop_assert!(!poly.contains_point(&Point::new(cx + 3.0 * r, cy)));
        prop_assert!((poly.area() - 0.5 * sides as f64 * r * r
            * (std::f64::consts::TAU / sides as f64).sin()).abs() < 1e-6);
    }

    #[test]
    fn polyline_intersection_implies_mbr_overlap(
        a in prop::collection::vec(arb_point(), 2..8),
        b in prop::collection::vec(arb_point(), 2..8),
    ) {
        let pa = Polyline::new(a);
        let pb = Polyline::new(b);
        if pa.intersects(&pb) {
            prop_assert!(pa.mbr().intersects(&pb.mbr()));
        }
        prop_assert_eq!(pa.intersects(&pb), pb.intersects(&pa));
    }
}

// --- SoA kernel equivalence --------------------------------------------
//
// The chunked SoA filter/sweep kernel must be a drop-in replacement for the
// scalar plane sweep: identical pairs, identical filter index lists,
// identical order — on every input, including xl ties, touching and
// degenerate rectangles, empty sides, and window-disjoint sides.

/// Rectangles with a coarse coordinate grid (quantized to 0.5) so xl ties,
/// touching edges and degenerate (zero-area) rects occur constantly.
fn arb_grid_rect() -> impl Strategy<Value = Rect> {
    (-40i32..40, -40i32..40, 0i32..12, 0i32..12).prop_map(|(x, y, w, h)| {
        Rect::new(
            x as f64 * 0.5,
            y as f64 * 0.5,
            (x + w) as f64 * 0.5,
            (y + h) as f64 * 0.5,
        )
    })
}

/// An xl-sorted sequence sized across node shapes: empty, a single entry,
/// leaf-sized (26), and directory-sized (102) inputs all fall in range.
fn arb_sorted_side(max: usize) -> impl Strategy<Value = Vec<Rect>> {
    prop::collection::vec(arb_grid_rect(), 0..max).prop_map(|mut v| {
        sort_by_xl(&mut v);
        v
    })
}

/// Windows both overlapping and far outside the rect population, plus
/// degenerate point windows.
fn arb_window() -> impl Strategy<Value = Rect> {
    (-120i32..120, -120i32..120, 0i32..80, 0i32..80).prop_map(|(x, y, w, h)| {
        Rect::new(
            x as f64 * 0.5,
            y as f64 * 0.5,
            (x + w) as f64 * 0.5,
            (y + h) as f64 * 0.5,
        )
    })
}

proptest! {
    #[test]
    fn soa_sweep_equals_scalar_sweep(
        r in arb_sorted_side(110),
        s in arb_sorted_side(110),
        window in arb_window(),
    ) {
        let (mut fr, mut fs, mut scalar) = (Vec::new(), Vec::new(), Vec::new());
        sweep_pairs_restricted(&r, &s, &window, &mut fr, &mut fs, &mut scalar);

        let soa_r = SoaMbrs::from_rects(&r);
        let soa_s = SoaMbrs::from_rects(&s);
        let mut scratch = SweepScratch::default();
        let mut soa = Vec::new();
        sweep_pairs_soa(&soa_r, &soa_s, &window, &mut scratch, &mut soa);

        prop_assert_eq!(&soa, &scalar, "pairs diverge");
        prop_assert_eq!(&scratch.filt_r, &fr, "R filter list diverges");
        prop_assert_eq!(&scratch.filt_s, &fs, "S filter list diverges");
    }

    #[test]
    fn soa_filter_window_equals_scalar_intersects(
        rects in prop::collection::vec(arb_grid_rect(), 0..110),
        window in arb_window(),
    ) {
        // filter_window has no sortedness requirement: any entry order.
        let soa = SoaMbrs::from_rects(&rects);
        let mut got = Vec::new();
        soa.filter_window(&window, &mut got);
        let want: Vec<u32> = rects
            .iter()
            .enumerate()
            .filter(|(_, rc)| rc.intersects(&window))
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn soa_gather_equals_filter_window_on_sorted_input(
        rects in arb_sorted_side(110),
        window in arb_window(),
    ) {
        let soa = SoaMbrs::from_rects(&rects);
        let mut plain = Vec::new();
        soa.filter_window(&window, &mut plain);
        let mut idx = vec![7u32];
        let (mut xl, mut xh, mut yl, mut yh) = (vec![1.0], vec![1.0], vec![1.0], vec![1.0]);
        soa.filter_window_gather(&window, &mut idx, &mut xl, &mut xh, &mut yl, &mut yh);
        prop_assert_eq!(&idx, &plain, "gather index list diverges");
        for (pos, &i) in idx.iter().enumerate() {
            let want = rects[i as usize];
            prop_assert_eq!(
                (xl[pos], yl[pos], xh[pos], yh[pos]),
                (want.xl, want.yl, want.xu, want.yu),
                "gathered coords diverge at {}", pos
            );
        }
    }

    #[test]
    fn soa_filter_within_equals_scalar_distance(
        rects in prop::collection::vec(arb_grid_rect(), 0..110),
        q in arb_grid_rect(),
        eps in 0.0f64..30.0,
    ) {
        let soa = SoaMbrs::from_rects(&rects);
        let mut got = Vec::new();
        soa.filter_within(&q, eps, &mut got);
        let want: Vec<u32> = rects
            .iter()
            .enumerate()
            .filter(|(_, rc)| rect_distance(&q, rc) <= eps)
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(got, want);
    }
}
