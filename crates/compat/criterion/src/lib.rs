//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the bench suite uses — `criterion_group!`/
//! `criterion_main!`, [`Criterion::bench_function`], benchmark groups with
//! [`Throughput`], and `iter`/`iter_batched` — with a simple wall-clock
//! measurement loop (fixed warm-up, then timed iterations, median-of-runs
//! reporting). No statistical analysis, plots, or saved baselines; output is
//! one line per benchmark. The real crate drops in by switching the path
//! dependency back to crates.io.

use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted, not used for scheduling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Units processed per iteration, for deriving a rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop driver passed to benchmark closures.
pub struct Bencher {
    /// Measured total duration and iteration count of the best run.
    best: Option<(Duration, u64)>,
}

const WARMUP_ITERS: u64 = 3;
const RUNS: usize = 5;
const TARGET_RUN: Duration = Duration::from_millis(200);

impl Bencher {
    fn new() -> Self {
        Bencher { best: None }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a per-iteration cost.
        let start = Instant::now();
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let per_iter = start.elapsed() / WARMUP_ITERS as u32;
        let iters = if per_iter.is_zero() {
            10_000
        } else {
            (TARGET_RUN.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        for _ in 0..RUNS {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if self
                .best
                .map_or(true, |(b, n)| elapsed * (n as u32) < b * (iters as u32))
            {
                self.best = Some((elapsed, iters));
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup` (setup excluded from the
    /// measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        // Run until the measured time (setup excluded) reaches the target.
        while total < TARGET_RUN && iters < 1_000_000 {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.best = Some((total, iters));
    }
}

fn report(name: &str, best: Option<(Duration, u64)>, throughput: Option<Throughput>) {
    let Some((elapsed, iters)) = best else {
        println!("{name:<40} (no measurement)");
        return;
    };
    let per_iter = elapsed.as_nanos() as f64 / iters.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / (per_iter * 1e-9))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 / (per_iter * 1e-9))
        }
        None => String::new(),
    };
    println!("{name:<40} {:>12.1} ns/iter{rate}", per_iter);
}

/// A named set of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API parity; the shim sizes samples by wall clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<N: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{id}", self.name), b.best, self.throughput);
        self
    }

    /// Finishes the group (reporting happens eagerly; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// A driver with default settings.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(name, b.best, None);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Re-export so `criterion::black_box` callers work.
pub use std::hint::black_box;

/// Declares a group of benchmark functions (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
    ($group:ident; $($rest:tt)*) => { $crate::criterion_group!($group, $($rest)*); };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_sum(c: &mut Criterion) {
        let mut g = c.benchmark_group("sum");
        g.throughput(Throughput::Elements(1000));
        g.bench_function("thousand", |b| b.iter(|| (0u64..1000).sum::<u64>()));
        g.finish();
    }

    criterion_group!(benches, bench_sum);

    #[test]
    fn group_runs_and_reports() {
        benches();
    }

    #[test]
    fn iter_batched_measures() {
        let mut b = Bencher::new();
        b.iter_batched(
            || vec![1u64; 64],
            |v| v.iter().sum::<u64>(),
            BatchSize::LargeInput,
        );
        let (elapsed, iters) = b.best.unwrap();
        assert!(iters >= 1);
        assert!(elapsed > Duration::ZERO);
    }
}
