//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! This workspace builds in fully offline environments where crates.io is
//! unreachable, so the real `serde_derive` cannot be downloaded. Nothing in
//! the workspace actually serializes (there is no `serde_json` consumer);
//! the derives exist so downstream users *could* plug real serde in. These
//! macros accept the derive syntax and expand to an empty token stream; the
//! sibling `serde` shim blanket-implements the marker traits, so
//! `#[derive(Serialize, Deserialize)]` keeps compiling unchanged.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
