//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim keeps the workspace's property tests compiling and
//! *running* unchanged: the [`proptest!`] macro, range/tuple/`prop_map`/
//! `collection::vec` strategies, `prop_assert*`, [`TestCaseError`], and
//! [`ProptestConfig::with_cases`]. Inputs are generated from a per-test
//! deterministic seed (no shrinking on failure — the failing input is
//! printed instead, along with the case number, so a failure reproduces by
//! construction).

use rand::rngs::StdRng;
use rand::{RngExt, SampleRange, SeedableRng};
use std::ops::Range;

/// Number of random cases a test runs by default.
pub const DEFAULT_CASES: u32 = 256;

/// Runner configuration (the used subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

/// A failed test case (mirrors `proptest::test_runner::TestCaseError`).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fails the current case with `reason`.
    pub fn fail(reason: impl std::fmt::Display) -> Self {
        TestCaseError(reason.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A generator of random values (the used subset of `proptest::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: Copy> Strategy for Range<T>
where
    Range<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);

/// A strategy producing a fixed value (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{RngExt, SampleRange, StdRng, Strategy};
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        Range<usize>: SampleRange<usize>,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.random_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Mirrors the `proptest::prop` facade module (`prop::collection::vec`).
pub mod prop {
    pub use super::collection;
}

/// Runs `body` for each case with inputs from `strategy`; used by the
/// [`proptest!`] macro expansion, not called directly.
pub fn run_cases<S: Strategy, F>(test_name: &str, config: &ProptestConfig, strategy: S, body: F)
where
    S::Value: std::fmt::Debug + Clone,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    // Per-test deterministic seed: tests are reproducible run to run while
    // different tests see unrelated streams.
    let mut h = 0xcbf29ce484222325u64;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    let mut rng = StdRng::seed_from_u64(h);
    for case in 0..config.cases {
        let input = strategy.generate(&mut rng);
        let shown = input.clone();
        if let Err(e) = body(input) {
            panic!(
                "proptest case {case}/{} failed: {e}\ninput: {shown:?}",
                config.cases
            );
        }
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random inputs.
#[macro_export]
macro_rules! proptest {
    // Internal: expand the test fns with a resolved config. Must precede the
    // catch-all arm or it would recurse into it forever.
    (@cfg ($config:expr)
        $(
            $(#[$fattr:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$fattr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    ($($strat,)+),
                    |($($pat,)+)| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
    // With a leading #![proptest_config(...)].
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    // Without one: default config.
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..50, 0u32..50)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_in_bounds(x in 3usize..17, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec((0u32..9).prop_map(|n| n * 2), 1..20),
            mut w in prop::collection::vec(0u32..5, 0..4),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|n| n % 2 == 0 && *n < 18));
            w.sort_unstable();
            prop_assert!(w.len() < 4);
        }

        #[test]
        fn question_mark_propagates(pair in arb_pair()) {
            let (a, b) = pair;
            let check = || -> Result<(), String> { if a < 50 && b < 50 { Ok(()) } else { Err("out of range".into()) } };
            check().map_err(TestCaseError::fail)?;
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_reports_input() {
        crate::run_cases(
            "failing_case",
            &ProptestConfig::with_cases(10),
            (0u32..5,),
            |(_n,)| Err(TestCaseError::fail("always fails")),
        );
    }
}
