//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and result
//! types so applications can persist them, but nothing *inside* the
//! workspace serializes, and the build environment has no network access to
//! fetch the real crate. This shim keeps the source identical to what it
//! would be with real serde:
//!
//! * [`Serialize`] / [`Deserialize`] are marker traits blanket-implemented
//!   for every type, so bounds like `T: Serialize` keep compiling;
//! * the re-exported derive macros (from the sibling no-op `serde_derive`)
//!   accept `#[derive(Serialize, Deserialize)]` and expand to nothing.
//!
//! Swapping the path dependency back to crates.io `serde` requires no source
//! change anywhere in the workspace.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize<'de>`; blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait mirroring `serde::de::DeserializeOwned`; blanket-implemented.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Mirrors `serde::de` far enough for `use serde::de::DeserializeOwned`.
pub mod de {
    pub use super::Deserialize;
    pub use super::DeserializeOwned;
}

/// Mirrors `serde::ser` for symmetric imports.
pub mod ser {
    pub use super::Serialize;
}
