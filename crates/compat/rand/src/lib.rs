//! Offline stand-in for the `rand` crate.
//!
//! Provides a deterministic, seedable [`rngs::StdRng`] (xoshiro256++ seeded
//! via SplitMix64) and the trait subset the workspace uses:
//! [`SeedableRng::seed_from_u64`], [`RngExt::random`] for the primitive
//! types, and [`RngExt::random_range`] over half-open ranges. All call
//! sites compile unchanged against the real crate; only the exact random
//! streams differ (every consumer in this workspace treats the stream as an
//! opaque function of the seed, so determinism per seed is what matters).

use std::ops::Range;

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "standard" domain (`[0,1)` for
/// floats, the full range for integers).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        let u = f64::standard_sample(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening-multiply range reduction (bias < 2^-64: fine for
                // synthetic data generation and tests).
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`]
/// (mirrors `rand::Rng`/`RngExt`).
pub trait RngExt: RngCore {
    /// A value uniform over `T`'s standard domain.
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// A value uniform over `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut sm: u64) -> Self {
            // SplitMix64 expansion of the seed, as the xoshiro authors
            // recommend, so similar seeds give unrelated streams.
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.random_range(10..20);
            assert!((10..20).contains(&v));
            let u = r.random_range(0usize..3);
            assert!(u < 3);
            let f = r.random_range(-2.0..4.0);
            assert!((-2.0..4.0).contains(&f));
            let n = r.random_range(-50i64..-40);
            assert!((-50..-40).contains(&n));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_roughly_fair() {
        let mut r = StdRng::seed_from_u64(13);
        let trues = (0..10_000).filter(|_| r.random::<bool>()).count();
        assert!((4000..6000).contains(&trues), "{trues}");
    }
}
