//! Offline stand-in for the `bytes` crate.
//!
//! Implements exactly the [`Buf`]/[`BufMut`] subset the page serialization
//! code uses — little-endian scalar reads/writes, `advance`, and
//! `put_bytes` — over `&[u8]`, `&mut [u8]`, and `Vec<u8>`, with the same
//! cursor semantics as the real crate (reading/writing consumes the slice).
//! Swapping the path dependency back to crates.io `bytes` requires no
//! source change.

/// Read cursor over a byte source (the used subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out and advances the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads a single byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor over a byte sink (the used subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_slice(&[val]);
        }
    }

    /// Writes a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for &mut [u8] {
    fn put_slice(&mut self, src: &[u8]) {
        let taken = std::mem::take(self);
        let (head, tail) = taken.split_at_mut(src.len());
        head.copy_from_slice(src);
        *self = tail;
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        let taken = std::mem::take(self);
        let (head, tail) = taken.split_at_mut(cnt);
        head.fill(val);
        *self = tail;
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.resize(self.len() + cnt, val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_roundtrip() {
        let mut v = Vec::new();
        v.put_u32_le(7);
        v.put_u64_le(u64::MAX - 1);
        v.put_f64_le(1.5);
        v.put_bytes(0, 3);
        assert_eq!(v.len(), 4 + 8 + 8 + 3);
        let mut r = &v[..];
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_f64_le(), 1.5);
        r.advance(3);
        assert!(!r.has_remaining());
    }

    #[test]
    fn slice_writer_advances() {
        let mut backing = [0u8; 12];
        let mut w = &mut backing[..];
        w.put_u32_le(0xAABBCCDD);
        w.put_u64_le(1);
        assert!(w.is_empty());
        assert_eq!(backing[0], 0xDD);
        assert_eq!(backing[4], 1);
    }
}
