//! Stress tests for the optimistic (seqlock) read path of
//! [`SharedPageCache`]: readers hammer hot resident pages without taking
//! any shard mutex while churn threads drive evictions, quarantines, and
//! fault retries through the pessimistic write path. Every payload carries
//! a checksum, so a torn read (a reader observing a page mid-replacement)
//! cannot go unnoticed.

use psj_buffer::{FaultSource, PageSource, Policy, SharedPageCache};
use psj_store::{FaultPlan, PageError, PageId, RetryPolicy};
use std::sync::Arc;

/// A page payload whose consistency is checkable on every read.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Checked {
    vals: [u64; 4],
    sum: u64,
}

/// Deterministic per-(page, slot) filler (SplitMix64-style finalizer).
fn mix(page: u32, slot: u64) -> u64 {
    let mut x = (page as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(slot.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    x ^= x >> 31;
    x.wrapping_mul(0x94D0_49BB_1331_11EB)
}

fn expect_page(page: u32) -> Checked {
    let vals = [mix(page, 0), mix(page, 1), mix(page, 2), mix(page, 3)];
    let sum = vals.iter().fold(0u64, |a, &v| a.wrapping_add(v));
    Checked { vals, sum }
}

/// Panics if `got` is internally inconsistent (torn) or belongs to a
/// different page (stale slot reuse).
fn verify(page: u32, got: &Checked) {
    let recomputed = got.vals.iter().fold(0u64, |a, &v| a.wrapping_add(v));
    assert_eq!(got.sum, recomputed, "torn payload on page {page}: {got:?}");
    assert_eq!(got, &expect_page(page), "wrong payload on page {page}");
}

struct CheckedSource {
    pages: usize,
}

impl PageSource for CheckedSource {
    type Item = Checked;

    fn fetch_page(&self, page: PageId) -> Result<Checked, PageError> {
        Ok(expect_page(page.0))
    }

    fn page_count(&self) -> usize {
        self.pages
    }
}

/// The acceptance criterion, stated directly: once a page is resident,
/// every further hit is served by the optimistic path (no shard mutex),
/// with zero validation retries when nothing mutates concurrently.
#[test]
fn resident_hits_are_served_optimistically() {
    let cache: SharedPageCache<Checked> = SharedPageCache::new(1, 64, 4, Policy::Lru);
    let src = CheckedSource { pages: 32 };
    for p in 0..32 {
        let (v, _) = cache.get(0, PageId(p), &src);
        verify(p, &v);
    }
    let base = cache.opt_stats();
    assert_eq!(base.hits, 0, "cold fills go through the pessimistic path");
    for _ in 0..10 {
        for p in 0..32 {
            let (v, _) = cache.get(0, PageId(p), &src);
            verify(p, &v);
        }
    }
    let d = cache.opt_stats().since(&base);
    assert_eq!(
        d.hits, 320,
        "every resident-page hit avoids the shard mutex"
    );
    assert_eq!(d.retries, 0, "uncontended reads never fail validation");
    assert_eq!(d.fallbacks, 0, "uncontended reads never fall back");
    let stats = cache.stats(0);
    assert_eq!(stats.hits_local, 320, "optimistic hits still count as hits");
    assert_eq!(stats.misses, 32);
    cache.check_invariants().expect("invariants");
}

/// Per-worker striped counters aggregate exactly, and the snapshot carries
/// the same numbers.
#[test]
fn opt_counters_aggregate_across_workers() {
    let cache: SharedPageCache<Checked> = SharedPageCache::new(3, 64, 2, Policy::Lru);
    let src = CheckedSource { pages: 16 };
    for w in 0..3 {
        for p in 0..16 {
            let (v, _) = cache.get(w, PageId(p), &src);
            verify(p, &v);
        }
    }
    let summed = (0..3).fold(psj_buffer::OptStats::default(), |acc, w| {
        acc.merged(&cache.opt_stats_for(w))
    });
    assert_eq!(summed, cache.opt_stats(), "striped counters aggregate");
    assert_eq!(cache.snapshot().opt, cache.opt_stats());
    // Worker 0 filled everything; workers 1 and 2 only ever hit.
    assert_eq!(cache.opt_stats_for(1).hits, 16);
    assert_eq!(cache.opt_stats_for(2).hits, 16);
}

/// Readers hammer clean hot pages while churn workers sweep a large cold
/// range through a small cache: evictions, quarantines (injected
/// corruption), and fault retries (injected transients) all mutate shards
/// under the optimistic readers. Checks:
///
/// * no torn or stale payload is ever observed (checksums verify),
/// * optimistic hits happen under churn,
/// * every injected transient is absorbed as exactly one counted retry,
/// * corrupt pages end up quarantined,
/// * validation failures are counted as retries (bounded re-runs with
///   fresh seeds guard against an interleaving with zero collisions),
/// * the cache's structural invariants hold at rest.
#[test]
fn optimistic_reads_survive_concurrent_churn() {
    const READERS: usize = 4;
    const CHURNERS: usize = 2;
    const COLD_LO: u32 = 64;
    const COLD_HI: u32 = 512;
    const ROUNDS: u64 = 6;

    for round in 0..ROUNDS {
        let plan = Arc::new(
            FaultPlan::new(42 + round)
                .with_transient(0.05, 1)
                .with_flip(0.03),
        );
        // Hot pages must be permanently clean so readers always succeed
        // (transient faults on them are fine: retries absorb those).
        let hot: Vec<u32> = (0..16)
            .filter(|&p| plan.permanent_class(PageId(p)).is_none())
            .take(8)
            .collect();
        assert!(hot.len() >= 4, "seed left too few clean hot pages");

        let cache: SharedPageCache<Checked> =
            SharedPageCache::new(READERS + CHURNERS, 48, 4, Policy::Lru)
                .with_retry(RetryPolicy::attempts(4));
        let src = FaultSource::new(
            CheckedSource {
                pages: COLD_HI as usize,
            },
            Arc::clone(&plan),
        );

        std::thread::scope(|s| {
            for r in 0..READERS {
                let (cache, src, hot) = (&cache, &src, &hot);
                s.spawn(move || {
                    for i in 0..4000 {
                        let p = hot[(i + r) % hot.len()];
                        match cache.try_get(r, PageId(p), src) {
                            Ok((v, _)) => verify(p, &v),
                            Err(e) => panic!("clean hot page {p} failed: {e}"),
                        }
                    }
                });
            }
            for c in 0..CHURNERS {
                let (cache, src) = (&cache, &src);
                s.spawn(move || {
                    let w = READERS + c;
                    let span = COLD_HI - COLD_LO;
                    for i in 0..3000u32 {
                        let p = COLD_LO + (i.wrapping_mul(17).wrapping_add(c as u32 * 131)) % span;
                        match cache.try_get(w, PageId(p), src) {
                            Ok((v, _)) => verify(p, &v),
                            // Corrupt / quarantined pages are the point of
                            // the churn; transients were retried away.
                            Err(e) => assert!(
                                e.is_corrupt() || cache.is_quarantined(PageId(p)),
                                "unexpected error on page {p}: {e}"
                            ),
                        }
                    }
                });
            }
        });

        cache.check_invariants().expect("invariants after churn");
        let stats = cache.total_stats();
        let opt = cache.opt_stats();
        assert!(opt.hits > 0, "hot pages must serve optimistic hits");
        assert!(stats.evictions > 0, "cold sweep must evict");
        assert!(
            cache.quarantined_pages() > 0,
            "injected corruption must quarantine"
        );
        assert_eq!(
            stats.retries,
            plan.transient_injected(),
            "every injected transient is exactly one counted retry"
        );
        if opt.retries > 0 {
            // Saw genuine validation failures under mutation — done.
            return;
        }
    }
    panic!("no optimistic validation retry observed in {ROUNDS} churn rounds");
}
