//! Property and stress tests for the concurrent sharded page cache,
//! following the invariant style of `properties.rs` / `GlobalBuffer::
//! check_invariants`: after arbitrary access patterns — single- and
//! multi-threaded — capacity is never exceeded, pinned pages never lose
//! their contents, and the per-worker counters exactly account for every
//! access.

use proptest::prelude::*;
use psj_buffer::{PageSource, Policy, SharedAccess, SharedPageCache};
use psj_store::{PageError, PageId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// A source that returns the page number and counts fetches.
struct Numbers {
    fetches: AtomicU64,
    pages: usize,
}

impl Numbers {
    fn new(pages: usize) -> Self {
        Numbers {
            fetches: AtomicU64::new(0),
            pages,
        }
    }

    fn fetches(&self) -> u64 {
        self.fetches.load(Ordering::Relaxed)
    }
}

impl PageSource for Numbers {
    type Item = u64;

    fn fetch_page(&self, page: PageId) -> Result<u64, PageError> {
        self.fetches.fetch_add(1, Ordering::Relaxed);
        Ok(page.0 as u64)
    }

    fn page_count(&self) -> usize {
        self.pages
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary single-threaded access sequences: residency never exceeds
    /// capacity, every returned value is correct, and the counters add up.
    #[test]
    fn capacity_and_accounting_hold(
        capacity in 1usize..24,
        shards in 1usize..6,
        accesses in prop::collection::vec(0u32..64, 1..400),
    ) {
        let cache: SharedPageCache<u64> = SharedPageCache::new(1, capacity, shards, Policy::Lru);
        let src = Numbers::new(64);
        for &p in &accesses {
            let (v, _) = cache.get(0, PageId(p), &src);
            prop_assert_eq!(*v, p as u64);
            prop_assert!(cache.len() <= cache.capacity());
        }
        cache.check_invariants().map_err(TestCaseError::fail)?;
        let stats = cache.stats(0);
        prop_assert_eq!(stats.requests(), accesses.len() as u64);
        prop_assert_eq!(stats.misses, src.fetches());
        prop_assert_eq!(stats.hits_remote, 0);
        prop_assert_eq!(stats.hits_in_flight, 0);
        // Evicted pages left residency but the cache never grew past bound.
        prop_assert!(cache.len() <= cache.capacity());
    }

    /// Pages held as `Arc` pins survive any amount of eviction pressure
    /// with their contents intact.
    #[test]
    fn pinned_pages_never_lost(
        pin_pages in prop::collection::vec(0u32..16, 1..8),
        churn in prop::collection::vec(16u32..256, 50..200),
    ) {
        // Tiny cache: the churn pages evict everything repeatedly.
        let cache: SharedPageCache<u64> = SharedPageCache::new(1, 2, 1, Policy::Lru);
        let src = Numbers::new(256);
        let pinned: Vec<_> =
            pin_pages.iter().map(|&p| (p, cache.get(0, PageId(p), &src).0)).collect();
        for &p in &churn {
            cache.get(0, PageId(p), &src);
        }
        cache.check_invariants().map_err(TestCaseError::fail)?;
        for (p, v) in &pinned {
            prop_assert_eq!(**v, *p as u64, "pinned page {} corrupted", p);
        }
    }

    /// All three replacement policies keep the same structural invariants.
    #[test]
    fn all_policies_stay_bounded(
        policy_idx in 0usize..3,
        accesses in prop::collection::vec(0u32..48, 1..300),
    ) {
        let policy = [Policy::Lru, Policy::Fifo, Policy::Clock][policy_idx];
        let cache: SharedPageCache<u64> = SharedPageCache::new(1, 6, 2, policy);
        let src = Numbers::new(48);
        for &p in &accesses {
            let (v, _) = cache.get(0, PageId(p), &src);
            prop_assert_eq!(*v, p as u64);
        }
        prop_assert!(cache.len() <= cache.capacity());
        cache.check_invariants().map_err(TestCaseError::fail)?;
    }
}

/// Multi-threaded stress: every worker hammers a skewed random page set;
/// afterwards the cache is structurally sound, no access was lost, and
/// `hits + misses == accesses` both per worker and in aggregate.
#[test]
fn multithreaded_stress_accounting() {
    const WORKERS: usize = 8;
    const ACCESSES_PER_WORKER: u64 = 20_000;
    const PAGES: u32 = 512;

    for capacity in [8usize, 64, 1024] {
        let cache: SharedPageCache<u64> = SharedPageCache::new(WORKERS, capacity, 4, Policy::Lru);
        let src = Numbers::new(PAGES as usize);
        std::thread::scope(|scope| {
            for w in 0..WORKERS {
                let cache = &cache;
                let src = &src;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xC0FFEE + w as u64);
                    let mut pins = Vec::new();
                    for i in 0..ACCESSES_PER_WORKER {
                        // Zipf-ish skew: half the traffic on 1/8 of pages.
                        let p = if rng.random_bool(0.5) {
                            rng.random_range(0..PAGES / 8)
                        } else {
                            rng.random_range(0..PAGES)
                        };
                        let (v, access) = cache.get(w, PageId(p), src);
                        assert_eq!(*v, p as u64, "worker {w} read wrong page content");
                        if let SharedAccess::HitRemote { owner } = access {
                            assert_ne!(owner, w, "remote hit owned by requester");
                        }
                        // Keep a rotating pin set alive under eviction.
                        if i % 97 == 0 {
                            pins.push((p, v));
                            if pins.len() > 16 {
                                pins.remove(0);
                            }
                        }
                    }
                    for (p, v) in pins {
                        assert_eq!(*v, p as u64, "pinned page {p} corrupted");
                    }
                });
            }
        });

        cache.check_invariants().unwrap();
        assert!(cache.len() <= cache.capacity(), "capacity exceeded");
        let total = cache.total_stats();
        assert_eq!(
            total.requests(),
            WORKERS as u64 * ACCESSES_PER_WORKER,
            "accesses lost or double-counted at capacity {capacity}: {total:?}"
        );
        for w in 0..WORKERS {
            assert_eq!(cache.stats(w).requests(), ACCESSES_PER_WORKER, "worker {w}");
        }
        // Every miss is exactly one source fetch (in-flight dedup).
        assert_eq!(total.misses, src.fetches(), "capacity {capacity}");
        assert!(total.misses >= PAGES as u64 / 8, "suspiciously few misses");
        // With a cache bigger than the page space nothing is ever evicted.
        if capacity >= PAGES as usize {
            assert_eq!(total.evictions, 0);
            assert_eq!(total.misses, PAGES as u64);
        }
    }
}

/// Concurrent requests for the same cold page: exactly one fetch happens,
/// everyone else waits and scores an in-flight or ordinary hit.
#[test]
fn in_flight_dedup_under_contention() {
    const WORKERS: usize = 8;
    let cache: SharedPageCache<u64> = SharedPageCache::new(WORKERS, 16, 1, Policy::Lru);
    let src = Numbers::new(4);
    std::thread::scope(|scope| {
        for w in 0..WORKERS {
            let cache = &cache;
            let src = &src;
            scope.spawn(move || {
                for p in 0..4u32 {
                    let (v, _) = cache.get(w, PageId(p), src);
                    assert_eq!(*v, p as u64);
                }
            });
        }
    });
    assert_eq!(src.fetches(), 4, "a cold page was fetched more than once");
    let total = cache.total_stats();
    assert_eq!(total.misses, 4);
    assert_eq!(total.requests(), WORKERS as u64 * 4);
    cache.check_invariants().unwrap();
}
