//! Stress and property tests for the borrowing guard read path of
//! [`SharedPageCache`]: [`PageGuard`] hands out `&T` with no Arc clone and
//! no shard mutex, pinning the page's mirror slot so concurrent evictions
//! defer (never block on) the payload free. Every payload carries a
//! checksum, so a torn or stale read — a guard observing a freed or
//! replaced page — cannot go unnoticed.

use proptest::prelude::*;
use psj_buffer::{OptCoupling, PageSource, Policy, SharedPageCache};
use psj_store::{PageError, PageId};

/// A page payload whose consistency is checkable on every read (same
/// construction as `tests/optimistic.rs`).
#[derive(Clone, Debug, PartialEq, Eq)]
struct Checked {
    vals: [u64; 4],
    sum: u64,
}

/// Deterministic per-(page, slot) filler (SplitMix64-style finalizer).
fn mix(page: u32, slot: u64) -> u64 {
    let mut x = (page as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(slot.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    x ^= x >> 31;
    x.wrapping_mul(0x94D0_49BB_1331_11EB)
}

fn expect_page(page: u32) -> Checked {
    let vals = [mix(page, 0), mix(page, 1), mix(page, 2), mix(page, 3)];
    let sum = vals.iter().fold(0u64, |a, &v| a.wrapping_add(v));
    Checked { vals, sum }
}

/// Panics if `got` is internally inconsistent (torn) or belongs to a
/// different page (stale slot reuse / use-after-free).
fn verify(page: u32, got: &Checked) {
    let recomputed = got.vals.iter().fold(0u64, |a, &v| a.wrapping_add(v));
    assert_eq!(got.sum, recomputed, "torn payload on page {page}: {got:?}");
    assert_eq!(got, &expect_page(page), "wrong payload on page {page}");
}

struct CheckedSource {
    pages: usize,
}

impl PageSource for CheckedSource {
    type Item = Checked;

    fn fetch_page(&self, page: PageId) -> Result<Checked, PageError> {
        Ok(expect_page(page.0))
    }

    fn page_count(&self) -> usize {
        self.pages
    }
}

/// The tentpole's acceptance shape, stated directly: once a page is
/// resident, a guard read serves it with neither mutex nor Arc clone, and
/// the counters say so.
#[test]
fn resident_pages_serve_guard_reads() {
    let cache: SharedPageCache<Checked> = SharedPageCache::new(2, 64, 4, Policy::Lru);
    let src = CheckedSource { pages: 16 };
    for p in 0..16 {
        let (v, _) = cache.get(0, PageId(p), &src);
        verify(p, &v);
    }
    for round in 0..5 {
        for p in 0..16u32 {
            let g = cache
                .guard_get(1, PageId(p))
                .unwrap_or_else(|| panic!("resident page {p} must guard-hit (round {round})"));
            verify(p, &g);
        }
    }
    let opt = cache.opt_stats();
    assert_eq!(opt.guard_hits, 80, "every resident read was a guard hit");
    assert_eq!(opt.hits, 0, "no read took the Arc-clone path");
    assert_eq!(opt.retries, 0, "uncontended reads never fail validation");
    let stats = cache.stats(1);
    assert_eq!(
        stats.hits_remote, 80,
        "guard hits keep BufferStats exact (worker 0 owns the fills)"
    );
    cache.check_invariants().expect("invariants");
}

/// A guard held on a page keeps its payload readable across the page's own
/// eviction — including when the *holder itself* performs the evicting
/// fill. Before the graveyard protocol this exact sequence deadlocked: the
/// remover span on the holder's own pin under the shard mutex.
#[test]
fn holding_a_guard_while_evicting_its_page_neither_blocks_nor_tears() {
    // Single shard, capacity 2: cold fills evict deterministically.
    let cache: SharedPageCache<Checked> = SharedPageCache::new(1, 2, 1, Policy::Lru);
    let src = CheckedSource { pages: 64 };
    cache.get(0, PageId(7), &src);
    let guard = cache.guard_get(0, PageId(7)).expect("resident page pins");
    verify(7, &guard);
    // Fill cold pages until page 7 is gone; the guard is held throughout.
    for p in 20..28 {
        let (v, _) = cache.get(0, PageId(p), &src);
        verify(p, &v);
    }
    assert!(!cache.contains(PageId(7)), "page 7 was evicted");
    verify(7, &guard);
    let arc = guard.to_arc();
    drop(guard);
    verify(7, &arc);
    drop(arc);
    cache
        .check_invariants()
        .expect("graveyard drains once pins drop");
}

/// Coupled descent over a single shard: an unchanged version extends the
/// chain, an eviction of a *different* page renews it, and an eviction of
/// the linked parent breaks it (child re-read pessimistically).
#[test]
fn coupling_chains_extend_renew_and_break() {
    let cache: SharedPageCache<Checked> = SharedPageCache::new(1, 3, 1, Policy::Lru);
    let src = CheckedSource { pages: 64 };
    for p in 0..3 {
        cache.get(0, PageId(p), &src);
    }

    // Root then child with the shard untouched: the chain couples.
    let mut chain = OptCoupling::root();
    let g0 = cache
        .guard_get_coupled(0, PageId(0), &mut chain)
        .expect("root link");
    verify(0, &g0);
    drop(g0);
    let g1 = cache
        .guard_get_coupled(0, PageId(1), &mut chain)
        .expect("coupled link");
    verify(1, &g1);
    drop(g1);
    assert_eq!(cache.opt_stats().coupled, 1);

    // Renewal: make page 1 (the linked parent) recently used, then evict
    // some *other* page with a cold fill. The shard version advances but
    // the parent is still resident, so the chain repairs in place.
    // `try_get_locked` skips the optimistic path, so the hit promotes the
    // parent in the replacement order deterministically.
    let (_, _) = cache
        .try_get_locked(0, PageId(1), &src)
        .expect("touch parent");
    cache.get(0, PageId(40), &src);
    assert!(cache.contains(PageId(1)), "parent survived the cold fill");
    let survivor = (0..3)
        .map(PageId)
        .find(|p| *p != PageId(1) && cache.contains(*p))
        .expect("capacity 3 keeps another original page");
    let g2 = cache
        .guard_get_coupled(0, survivor, &mut chain)
        .expect("renewed link");
    verify(survivor.0, &g2);
    drop(g2);
    let opt = cache.opt_stats();
    assert_eq!(opt.renewed, 1, "version moved but the parent never left");
    assert_eq!(opt.fallbacks, 0);

    // Break: evict the linked parent itself, then try to extend the chain.
    // The child read is refused (per-page pessimistic fallback) and the
    // chain resets to root.
    let parent = survivor;
    let mut cold = 41u32;
    while cache.contains(parent) {
        cache.get(0, PageId(cold), &src);
        cold += 1;
    }
    let still = (0..64u32)
        .map(PageId)
        .find(|p| cache.contains(*p))
        .expect("something is resident");
    assert!(
        cache.guard_get_coupled(0, still, &mut chain).is_none(),
        "a broken chain refuses the child guard"
    );
    let opt = cache.opt_stats();
    assert_eq!(opt.fallbacks, 1, "the broken chain counts as a fallback");
    // The reset chain starts fresh and couples again.
    let g3 = cache
        .guard_get_coupled(0, still, &mut chain)
        .expect("fresh root after reset");
    verify(still.0, &g3);
    drop(g3);
    cache.check_invariants().expect("invariants");
}

/// Satellite: optimistic hits skip LRU promotion, so without the sampled
/// touch a hammered page looks idle and cold fills evict it. Every
/// `TOUCH_SAMPLE`-th optimistic hit re-touches under the mutex; a page
/// hammered past one sample interval must survive a cold sweep that
/// evicts everything else.
#[test]
fn hammered_page_survives_cold_churn_via_sampled_touch() {
    // Single shard, capacity 4, LRU: fill order 0,1,2,3 leaves page 0 as
    // the LRU victim-elect.
    let cache: SharedPageCache<Checked> = SharedPageCache::new(1, 4, 1, Policy::Lru);
    let src = CheckedSource { pages: 64 };
    for p in 0..4 {
        cache.get(0, PageId(p), &src);
    }
    // Hammer page 0 through the optimistic path. The first sampled hit
    // re-touches it, moving it to the MRU end without taking the mutex on
    // the other 64 hits.
    for _ in 0..65 {
        let (v, _) = cache.get(0, PageId(0), &src);
        verify(0, &v);
    }
    let before = cache.opt_stats();
    assert_eq!(before.hits, 65, "the hammer ran optimistically");
    // Three cold fills evict three pages — the untouched 1, 2, 3.
    for p in 10..13 {
        cache.get(0, PageId(p), &src);
    }
    assert_eq!(cache.total_stats().evictions, 3);
    assert!(
        cache.contains(PageId(0)),
        "the hammered page must survive the cold sweep"
    );
    let (_, access) = cache.get(0, PageId(0), &src);
    assert_ne!(
        access,
        psj_buffer::SharedAccess::Miss,
        "surviving means no refill"
    );
    cache.check_invariants().expect("invariants");
}

/// Readers hold guards on hot pages — keeping them pinned across yields —
/// while churn threads sweep a cold range through a small cache, evicting
/// hot pages out from under the pins. Checks: a held guard never observes
/// a torn or stale payload (the graveyard defers frees past the last
/// deref), guard hits and coupled links happen under churn, and the
/// structural invariants (including an empty graveyard) hold at rest.
#[test]
fn guards_survive_concurrent_eviction_churn() {
    const READERS: usize = 4;
    const CHURNERS: usize = 2;
    const HOT: u32 = 8;
    const COLD_LO: u32 = 64;
    const COLD_HI: u32 = 512;

    let cache: SharedPageCache<Checked> =
        SharedPageCache::new(READERS + CHURNERS, 24, 2, Policy::Lru);
    let src = CheckedSource {
        pages: COLD_HI as usize,
    };

    std::thread::scope(|s| {
        for r in 0..READERS {
            let (cache, src) = (&cache, &src);
            s.spawn(move || {
                let mut chain = OptCoupling::root();
                for i in 0..4000usize {
                    let p = ((i + r) % HOT as usize) as u32;
                    match cache.guard_get_coupled(r, PageId(p), &mut chain) {
                        Some(guard) => {
                            verify(p, &guard);
                            // Hold the pin across a reschedule so churners
                            // get a chance to evict the page under us,
                            // then read again through the same guard.
                            if i % 16 == 0 {
                                std::thread::yield_now();
                            }
                            verify(p, &guard);
                            // Occasionally perform a fill *while holding
                            // the guard* — the self-eviction shape that
                            // must never deadlock.
                            if i % 64 == 0 {
                                let cold = COLD_LO + (i as u32 * 31 + r as u32) % 64;
                                let (v, _) = cache.get(r, PageId(cold), src);
                                verify(cold, &v);
                                verify(p, &guard);
                            }
                        }
                        None => {
                            // Not resident (or churned): pessimistic path.
                            let (v, _) = cache.get(r, PageId(p), src);
                            verify(p, &v);
                        }
                    }
                }
            });
        }
        for c in 0..CHURNERS {
            let (cache, src) = (&cache, &src);
            s.spawn(move || {
                let w = READERS + c;
                let span = COLD_HI - COLD_LO;
                for i in 0..3000u32 {
                    let p = COLD_LO + (i.wrapping_mul(17).wrapping_add(c as u32 * 131)) % span;
                    let (v, _) = cache.get(w, PageId(p), src);
                    verify(p, &v);
                }
            });
        }
    });

    cache.check_invariants().expect("invariants after churn");
    let opt = cache.opt_stats();
    assert!(opt.guard_hits > 0, "hot pages must serve guard hits");
    assert!(opt.coupled > 0, "descent chains must couple under churn");
    assert!(cache.total_stats().evictions > 0, "cold sweep must evict");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For every access sequence, the guard path and the Arc path observe
    /// the same bytes: each step reads one page both ways (guard first,
    /// then the pessimistic-capable Arc path) and requires the results to
    /// be identical and checksum-clean, while up to four older guards are
    /// kept pinned to exercise retirement. Ends at rest with invariants
    /// (including an empty graveyard).
    #[test]
    fn guard_reads_equal_arc_reads(
        ops in prop::collection::vec((0u32..48, 0u32..2), 1..120)
    ) {
        let cache: SharedPageCache<Checked> = SharedPageCache::new(1, 8, 2, Policy::Lru);
        let src = CheckedSource { pages: 48 };
        let mut held = Vec::new();
        for (page, hold) in ops {
            let hold = hold == 1;
            let p = PageId(page);
            let via_guard = match cache.guard_get(0, p) {
                Some(g) => {
                    verify(page, &g);
                    let arc = g.to_arc();
                    if hold {
                        held.push((page, g));
                        if held.len() > 4 {
                            held.remove(0);
                        }
                    }
                    arc
                }
                None => cache.try_get(0, p, &src).unwrap().0,
            };
            let (via_arc, _) = cache.try_get(0, p, &src).unwrap();
            prop_assert_eq!(&*via_guard, &*via_arc, "paths diverge on page {}", page);
            verify(page, &via_arc);
            for (hp, hg) in &held {
                verify(*hp, hg);
            }
        }
        drop(held);
        cache.check_invariants().map_err(TestCaseError::fail)?;
    }
}
