//! Property-based tests for the buffer layer.

use proptest::prelude::*;
use psj_buffer::{GlobalAccess, GlobalBuffer, Lru, PageBuffer, Policy};
use psj_store::PageId;
use std::collections::VecDeque;

fn arb_trace(max_page: u32, len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0..max_page, 0..len)
}

proptest! {
    /// The O(1) LRU behaves exactly like a naive reference implementation.
    #[test]
    fn lru_matches_reference(
        capacity in 1usize..12,
        trace in arb_trace(30, 300),
    ) {
        let mut lru = Lru::new(capacity);
        let mut reference: VecDeque<PageId> = VecDeque::new(); // front = MRU
        for n in trace {
            let page = PageId(n);
            let hit = lru.touch(page);
            let ref_hit = reference.contains(&page);
            prop_assert_eq!(hit, ref_hit);
            if ref_hit {
                let pos = reference.iter().position(|&q| q == page).unwrap();
                reference.remove(pos);
                reference.push_front(page);
            } else {
                let evicted = lru.insert(page);
                let ref_evicted =
                    if reference.len() >= capacity { reference.pop_back() } else { None };
                prop_assert_eq!(evicted, ref_evicted);
                reference.push_front(page);
            }
            prop_assert_eq!(lru.len(), reference.len());
            prop_assert_eq!(lru.pages_mru_order(), Vec::from(reference.clone()));
        }
    }

    /// All policies never exceed capacity and always retain the newest page.
    #[test]
    fn policies_respect_capacity(
        capacity in 1usize..10,
        trace in arb_trace(40, 200),
    ) {
        for policy in [Policy::Lru, Policy::Fifo, Policy::Clock] {
            let mut buf = PageBuffer::new(policy, capacity);
            for &n in &trace {
                let page = PageId(n);
                if !buf.touch(page) {
                    buf.insert(page);
                }
                prop_assert!(buf.len() <= capacity, "{policy:?} overflowed");
                prop_assert!(buf.contains(page), "{policy:?} dropped fresh page");
            }
        }
    }

    /// Global buffer invariants hold under arbitrary access interleavings:
    /// page-at-most-once, owner consistency, and misses equal disk reads.
    #[test]
    fn global_buffer_invariants(
        procs in 1usize..6,
        capacity in 1usize..16,
        trace in arb_trace(25, 250),
    ) {
        let mut g = GlobalBuffer::new(procs, capacity);
        let mut disk_reads = 0u64;
        for (i, &n) in trace.iter().enumerate() {
            let proc = i % procs;
            match g.access(proc, PageId(n)) {
                GlobalAccess::Miss => {
                    disk_reads += 1;
                    // Complete immediately (no interleaved fetch in this test).
                    g.complete_read(proc, PageId(n));
                }
                GlobalAccess::HitLocal => {
                    prop_assert_eq!(g.owner_of(PageId(n)), Some(proc));
                }
                GlobalAccess::HitRemote { owner } => {
                    prop_assert!(owner != proc);
                    prop_assert_eq!(g.owner_of(PageId(n)), Some(owner));
                }
                GlobalAccess::InFlight { .. } => {
                    prop_assert!(false, "no read left in flight here");
                }
            }
            g.check_invariants().map_err(TestCaseError::fail)?;
        }
        prop_assert_eq!(g.total_stats().misses, disk_reads);
    }

    /// With capacity at least the page universe, the global buffer never
    /// reads a page from disk twice.
    #[test]
    fn big_global_buffer_reads_each_page_once(trace in arb_trace(20, 300)) {
        let mut g = GlobalBuffer::new(4, 64);
        let mut distinct = std::collections::BTreeSet::new();
        for (i, &n) in trace.iter().enumerate() {
            let proc = i % 4;
            if let GlobalAccess::Miss = g.access(proc, PageId(n)) {
                g.complete_read(proc, PageId(n));
            }
            distinct.insert(n);
        }
        prop_assert_eq!(g.total_stats().misses, distinct.len() as u64);
    }
}
