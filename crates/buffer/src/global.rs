//! The shared-virtual-memory global buffer (paper §3.2).
//!
//! "The global buffer consists of the sum of the local buffers. The access to
//! a page in the global buffer is directed by the manager of the virtual
//! shared memory." Key properties reproduced here:
//!
//! * a page resides in **at most one** processor's partition,
//! * a hit in one's own partition costs a local memory access; a hit in
//!   another partition costs a (~10× slower) interconnect transfer,
//! * replacement is LRU over the *whole* buffer,
//! * when a page is already being fetched from disk by some processor, a
//!   concurrent requester waits for that fetch instead of issuing a second
//!   disk read (the in-flight mechanism the paper motivates in §3.1).
//!
//! The virtual-time bookkeeping of in-flight reads lives in the executor;
//! this type exposes the residency/ownership state transitions.

use crate::policy::{PageBuffer, Policy};
use crate::stats::BufferStats;
use psj_store::PageId;
use std::collections::HashMap;

/// Outcome of a global-buffer access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalAccess {
    /// Resident in the requesting processor's own partition.
    HitLocal,
    /// Resident in another processor's partition; the page is served over
    /// the interconnect from `owner`.
    HitRemote {
        /// Processor whose partition holds the page.
        owner: usize,
    },
    /// A disk read for this page is already in flight, issued by `reader`;
    /// the requester should wait for it rather than re-read from disk.
    InFlight {
        /// Processor that issued the outstanding read.
        reader: usize,
    },
    /// Not resident; the requester must read it from disk (and then call
    /// [`GlobalBuffer::complete_read`]).
    Miss,
}

/// A single logical LRU buffer spanning all processors' memories.
#[derive(Debug, Clone)]
pub struct GlobalBuffer {
    lru: PageBuffer,
    owner: HashMap<PageId, usize>,
    in_flight: HashMap<PageId, usize>,
    stats: Vec<BufferStats>,
}

impl GlobalBuffer {
    /// Creates a global LRU buffer of `total_pages` capacity shared by `n`
    /// processors.
    pub fn new(n: usize, total_pages: usize) -> Self {
        Self::with_policy(n, total_pages, Policy::Lru)
    }

    /// As [`GlobalBuffer::new`] with an explicit replacement policy.
    pub fn with_policy(n: usize, total_pages: usize, policy: Policy) -> Self {
        assert!(n > 0, "need at least one processor");
        GlobalBuffer {
            lru: PageBuffer::new(policy, total_pages.max(1)),
            owner: HashMap::new(),
            in_flight: HashMap::new(),
            stats: vec![BufferStats::default(); n],
        }
    }

    /// Number of processors sharing the buffer.
    pub fn num_procs(&self) -> usize {
        self.stats.len()
    }

    /// Number of currently resident pages.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Whether no page is resident.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Processor `proc` requests `page`.
    ///
    /// On [`GlobalAccess::Miss`] the caller must start a disk read and call
    /// [`GlobalBuffer::complete_read`] when it finishes. On
    /// [`GlobalAccess::InFlight`] the caller should block until the pending
    /// read completes (the executor knows its completion time) — the page is
    /// then owned by the original reader, i.e. a subsequent access is a
    /// remote hit unless `proc == reader`.
    pub fn access(&mut self, proc: usize, page: PageId) -> GlobalAccess {
        if let Some(&reader) = self.in_flight.get(&page) {
            self.stats[proc].hits_in_flight += 1;
            return GlobalAccess::InFlight { reader };
        }
        if self.lru.touch(page) {
            let owner = *self
                .owner
                .get(&page)
                .expect("resident page must have an owner");
            if owner == proc {
                self.stats[proc].hits_local += 1;
                GlobalAccess::HitLocal
            } else {
                self.stats[proc].hits_remote += 1;
                GlobalAccess::HitRemote { owner }
            }
        } else {
            self.stats[proc].misses += 1;
            self.in_flight.insert(page, proc);
            GlobalAccess::Miss
        }
    }

    /// Finishes the disk read of `page` issued by `proc`: the page becomes
    /// resident in `proc`'s partition and most-recently-used; the global LRU
    /// victim (if any) is evicted.
    pub fn complete_read(&mut self, proc: usize, page: PageId) {
        let reader = self.in_flight.remove(&page);
        debug_assert_eq!(
            reader,
            Some(proc),
            "completing a read that was not in flight"
        );
        if let Some(victim) = self.lru.insert(page) {
            self.owner.remove(&victim);
            self.stats[proc].evictions += 1;
        }
        self.owner.insert(page, proc);
    }

    /// Read-only residency test (no promotion, no stats).
    pub fn contains(&self, page: PageId) -> bool {
        self.lru.contains(page)
    }

    /// The partition (processor) currently holding `page`, if resident.
    pub fn owner_of(&self, page: PageId) -> Option<usize> {
        self.owner.get(&page).copied()
    }

    /// Per-processor statistics.
    pub fn stats(&self, proc: usize) -> &BufferStats {
        &self.stats[proc]
    }

    /// Aggregated statistics over all processors.
    pub fn total_stats(&self) -> BufferStats {
        self.stats
            .iter()
            .fold(BufferStats::default(), |acc, s| acc.merged(s))
    }

    /// Records a path-buffer hit for `proc`.
    pub fn record_path_hit(&mut self, proc: usize) {
        self.stats[proc].hits_path += 1;
    }

    /// Invariant check used by tests: every resident page has exactly one
    /// owner and vice versa.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.owner.len() != self.lru.len() {
            return Err(format!(
                "owner map has {} entries but LRU holds {} pages",
                self.owner.len(),
                self.lru.len()
            ));
        }
        for page in self.owner.keys() {
            if !self.lru.contains(*page) {
                return Err(format!("owned page {page} not resident"));
            }
        }
        for page in self.owner.keys() {
            if self.in_flight.contains_key(page) {
                return Err(format!("page {page} both resident and in flight"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u32) -> PageId {
        PageId(n)
    }

    #[test]
    fn miss_then_local_hit() {
        let mut g = GlobalBuffer::new(2, 4);
        assert_eq!(g.access(0, p(1)), GlobalAccess::Miss);
        g.complete_read(0, p(1));
        assert_eq!(g.access(0, p(1)), GlobalAccess::HitLocal);
        g.check_invariants().unwrap();
    }

    #[test]
    fn remote_hit_reports_owner() {
        let mut g = GlobalBuffer::new(3, 4);
        assert_eq!(g.access(2, p(7)), GlobalAccess::Miss);
        g.complete_read(2, p(7));
        assert_eq!(g.access(0, p(7)), GlobalAccess::HitRemote { owner: 2 });
        assert_eq!(g.owner_of(p(7)), Some(2));
        // Ownership does not migrate on read.
        assert_eq!(g.access(1, p(7)), GlobalAccess::HitRemote { owner: 2 });
        g.check_invariants().unwrap();
    }

    #[test]
    fn page_at_most_once() {
        let mut g = GlobalBuffer::new(2, 4);
        assert_eq!(g.access(0, p(1)), GlobalAccess::Miss);
        g.complete_read(0, p(1));
        // Processor 1 gets a remote hit, NOT a second copy.
        assert_eq!(g.access(1, p(1)), GlobalAccess::HitRemote { owner: 0 });
        assert_eq!(g.len(), 1);
        assert_eq!(g.total_stats().misses, 1, "only one disk read");
    }

    #[test]
    fn concurrent_fetch_waits_in_flight() {
        let mut g = GlobalBuffer::new(2, 4);
        assert_eq!(g.access(0, p(5)), GlobalAccess::Miss);
        // Processor 1 asks while the read is still outstanding.
        assert_eq!(g.access(1, p(5)), GlobalAccess::InFlight { reader: 0 });
        g.complete_read(0, p(5));
        assert_eq!(g.access(1, p(5)), GlobalAccess::HitRemote { owner: 0 });
        assert_eq!(g.total_stats().misses, 1);
        assert_eq!(g.total_stats().hits_in_flight, 1);
    }

    #[test]
    fn global_lru_eviction_across_owners() {
        let mut g = GlobalBuffer::new(2, 2);
        g.access(0, p(1));
        g.complete_read(0, p(1));
        g.access(1, p(2));
        g.complete_read(1, p(2));
        // p1 is LRU; inserting p3 evicts it even though owners differ.
        g.access(0, p(3));
        g.complete_read(0, p(3));
        assert!(!g.contains(p(1)));
        assert!(g.contains(p(2)));
        assert!(g.contains(p(3)));
        assert_eq!(g.owner_of(p(1)), None);
        g.check_invariants().unwrap();
    }

    #[test]
    fn remote_hit_promotes_in_global_lru() {
        let mut g = GlobalBuffer::new(2, 2);
        g.access(0, p(1));
        g.complete_read(0, p(1));
        g.access(0, p(2));
        g.complete_read(0, p(2));
        // Remote access by proc 1 promotes p1.
        assert_eq!(g.access(1, p(1)), GlobalAccess::HitRemote { owner: 0 });
        g.access(1, p(3));
        g.complete_read(1, p(3));
        assert!(g.contains(p(1)), "promoted page survives");
        assert!(!g.contains(p(2)), "un-promoted page evicted");
    }
}
