//! Per-processor local buffers (paper §3.1/§3.2, the `lsr` configuration).
//!
//! Each processor owns a private LRU buffer; processors cannot see each
//! other's buffers. The same page may therefore be resident at several
//! processors simultaneously, and two processors needing the same page both
//! read it from disk — the extra I/O the global buffer is designed to avoid.

use crate::policy::{PageBuffer, Policy};
use crate::stats::BufferStats;
use psj_store::PageId;

/// A set of private LRU buffers, one per processor.
#[derive(Debug, Clone)]
pub struct LocalBuffers {
    bufs: Vec<PageBuffer>,
    stats: Vec<BufferStats>,
}

impl LocalBuffers {
    /// Creates `n` LRU buffers of `pages_per_proc` pages each.
    pub fn new(n: usize, pages_per_proc: usize) -> Self {
        Self::with_policy(n, pages_per_proc, Policy::Lru)
    }

    /// Creates `n` buffers of `pages_per_proc` pages each with the given
    /// replacement policy.
    pub fn with_policy(n: usize, pages_per_proc: usize, policy: Policy) -> Self {
        assert!(n > 0, "need at least one processor");
        LocalBuffers {
            bufs: (0..n)
                .map(|_| PageBuffer::new(policy, pages_per_proc))
                .collect(),
            stats: vec![BufferStats::default(); n],
        }
    }

    /// Creates `n` buffers splitting `total_pages` evenly (the paper quotes
    /// buffer sizes as totals, e.g. "800 pages" for 8 processors = 100 each).
    /// Every buffer gets at least one page.
    pub fn with_total(n: usize, total_pages: usize) -> Self {
        Self::new(n, (total_pages / n).max(1))
    }

    /// As [`LocalBuffers::with_total`] with an explicit replacement policy.
    pub fn with_total_policy(n: usize, total_pages: usize, policy: Policy) -> Self {
        Self::with_policy(n, (total_pages / n).max(1), policy)
    }

    /// Number of processors.
    pub fn num_procs(&self) -> usize {
        self.bufs.len()
    }

    /// Whether `page` is resident in `proc`'s buffer; promotes on hit.
    /// Returns `true` on hit. On miss the caller performs the disk read and
    /// must call [`LocalBuffers::load`].
    pub fn access(&mut self, proc: usize, page: PageId) -> bool {
        if self.bufs[proc].touch(page) {
            self.stats[proc].hits_local += 1;
            true
        } else {
            self.stats[proc].misses += 1;
            false
        }
    }

    /// Installs a page just read from disk into `proc`'s buffer.
    pub fn load(&mut self, proc: usize, page: PageId) {
        if self.bufs[proc].insert(page).is_some() {
            self.stats[proc].evictions += 1;
        }
    }

    /// Read-only residency test (no promotion, no stats).
    pub fn contains(&self, proc: usize, page: PageId) -> bool {
        self.bufs[proc].contains(page)
    }

    /// Per-processor statistics.
    pub fn stats(&self, proc: usize) -> &BufferStats {
        &self.stats[proc]
    }

    /// Aggregated statistics over all processors.
    pub fn total_stats(&self) -> BufferStats {
        self.stats
            .iter()
            .fold(BufferStats::default(), |acc, s| acc.merged(s))
    }

    /// Records a path-buffer hit for `proc` (kept here so all buffer counters
    /// live in one place).
    pub fn record_path_hit(&mut self, proc: usize) {
        self.stats[proc].hits_path += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u32) -> PageId {
        PageId(n)
    }

    #[test]
    fn buffers_are_independent() {
        let mut lb = LocalBuffers::new(2, 2);
        assert!(!lb.access(0, p(1)));
        lb.load(0, p(1));
        // Processor 1 does not see processor 0's page.
        assert!(!lb.access(1, p(1)));
        lb.load(1, p(1));
        // Both now hit independently.
        assert!(lb.access(0, p(1)));
        assert!(lb.access(1, p(1)));
        assert_eq!(lb.total_stats().misses, 2);
        assert_eq!(lb.total_stats().hits_local, 2);
    }

    #[test]
    fn with_total_splits_evenly() {
        let lb = LocalBuffers::with_total(8, 800);
        assert_eq!(lb.num_procs(), 8);
        // Each buffer holds 100 pages: verify via fill behaviour.
        let mut lb = lb;
        for n in 0..100 {
            lb.load(0, p(n));
        }
        assert!(lb.contains(0, p(0)));
        lb.load(0, p(100));
        assert!(!lb.contains(0, p(0)), "101st page evicts the LRU one");
    }

    #[test]
    fn with_total_gives_minimum_one_page() {
        let mut lb = LocalBuffers::with_total(8, 4);
        lb.load(0, p(1));
        assert!(lb.contains(0, p(1)));
    }

    #[test]
    fn eviction_counted() {
        let mut lb = LocalBuffers::new(1, 1);
        lb.load(0, p(1));
        lb.load(0, p(2));
        assert_eq!(lb.stats(0).evictions, 1);
    }
}
