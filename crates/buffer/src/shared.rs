//! A concurrent, lock-sharded page cache for the native executor.
//!
//! The paper's buffer layer ([`crate::LocalBuffers`], [`crate::GlobalBuffer`])
//! is single-threaded: the discrete-event simulator interleaves processors
//! deterministically, so plain `&mut` access suffices. The native executor
//! runs real OS threads, which need a cache that is *correct under
//! concurrency* while preserving the paper's semantics:
//!
//! * bounded residency — at most `capacity` pages cached across all shards,
//! * single fetch per page — concurrent requesters of a non-resident page
//!   wait for the one in-flight load instead of fetching twice (the paper's
//!   §3.1 in-flight mechanism, here a per-shard condvar),
//! * per-worker [`BufferStats`] distinguishing local hits, *remote* hits
//!   (page cached by a different worker — the global organization's
//!   interconnect traffic), in-flight waits, misses, and evictions,
//! * pluggable replacement [`Policy`] via the existing [`PageBuffer`]
//!   machinery, LRU by default.
//!
//! The cache is generic over what a page decodes to (`T`): the native join
//! caches decoded R\*-tree nodes, the pager tests cache raw 4 KB pages.
//! Values are handed out as `Arc<T>`, so a page a worker is still using
//! ("pinned") stays valid even if the cache evicts it concurrently —
//! eviction only drops the cache's reference.
//!
//! Sharding: a page's shard is `hash(page) % shards`. Each shard has its own
//! mutex, residency buffer (`capacity / shards` pages, ≥ 1), and condvar, so
//! disjoint pages contend only 1/N of the time. With `shards == 1` the cache
//! degenerates to a single global lock — the configuration a per-worker
//! *local* buffer uses, since it is uncontended anyway.
//!
//! ## Failure handling
//!
//! Fills are fallible and typed ([`psj_store::PageError`]). The cache owns
//! the retry policy for the whole stack: a transient source error is
//! retried in place under the cache's [`RetryPolicy`] (counted in
//! [`BufferStats::retries`]), so neither the pager below nor the executor
//! above needs its own loop. A *corrupt* fill (checksum mismatch) is never
//! retried — the page is **quarantined** in its shard: the original error
//! is stored and replayed to every later requester without touching the
//! source again, so one poisoned page degrades exactly the requests that
//! need it while the device is spared a re-read storm.

use crate::policy::{PageBuffer, Policy};
use crate::stats::BufferStats;
use psj_store::{FaultPlan, Page, PageError, PageId, RetryPolicy};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Where a page's bytes come from on a cache miss.
///
/// Implemented by the disk-backed [`psj_store::FilePager`] (raw pages) and,
/// in `psj-core`, by an adapter over `PagedTree` (decoded nodes).
pub trait PageSource {
    /// What a fetched page decodes to.
    type Item;

    /// Fetches/decodes `page`. Called outside all cache locks; concurrent
    /// calls for *distinct* pages may overlap, the cache guarantees at most
    /// one in-flight fetch per page. Retryable failures are retried by the
    /// cache under its [`RetryPolicy`]; a corrupt result quarantines the
    /// page; other final failures are propagated to the requester by
    /// [`SharedPageCache::try_get`] and cached nowhere — the next request
    /// for the page retries the source.
    fn fetch_page(&self, page: PageId) -> Result<Self::Item, PageError>;

    /// Total number of pages this source can serve (page ids `0..n`).
    fn page_count(&self) -> usize;
}

/// How a request was satisfied; returned so callers can account costs
/// (e.g. charge an interconnect penalty for remote hits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharedAccess {
    /// Cached, and this worker was the one who loaded it.
    HitLocal,
    /// Cached by a different worker (`owner`): the global organization
    /// serves this over the interconnect.
    HitRemote {
        /// Worker whose fetch brought the page in.
        owner: usize,
    },
    /// Another worker's fetch was in flight; this request waited for it.
    HitInFlight,
    /// Not cached: this worker fetched it from the source.
    Miss,
}

struct ShardState<T> {
    /// Residency + replacement order over this shard's pages.
    buf: PageBuffer,
    /// Cached values for resident pages.
    data: HashMap<PageId, Arc<T>>,
    /// Worker whose fetch loaded each resident page.
    owner: HashMap<PageId, usize>,
    /// Pages some worker is currently fetching.
    loading: HashSet<PageId>,
    /// Pages whose fill returned a corrupt (unrecoverable) error: the
    /// stored error is replayed to every later requester.
    quarantined: HashMap<PageId, PageError>,
}

struct Shard<T> {
    state: Mutex<ShardState<T>>,
    loaded: Condvar,
    capacity: usize,
    /// Bumped (under the shard lock, published with `Release`) whenever a
    /// resident page leaves this shard — eviction or quarantine. A reader
    /// holding `(page, generation)` from an earlier fill knows the page is
    /// still resident while the generation is unchanged; the per-worker
    /// [`L1Front`](crate::L1Front) builds on exactly this.
    generation: AtomicU64,
}

/// Per-worker counters, padded out so workers on different cores don't
/// false-share a cache line. Plain relaxed atomics: each field is written
/// by its own worker on the hot path and only read (racily, monotonically)
/// by stats observers, so no mutex is needed.
#[repr(align(64))]
#[derive(Default)]
struct WorkerStats {
    hits_local: AtomicU64,
    hits_l1: AtomicU64,
    hits_remote: AtomicU64,
    hits_in_flight: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    retries: AtomicU64,
}

impl WorkerStats {
    fn snapshot(&self) -> BufferStats {
        BufferStats {
            hits_local: self.hits_local.load(Ordering::Relaxed),
            hits_l1: self.hits_l1.load(Ordering::Relaxed),
            hits_remote: self.hits_remote.load(Ordering::Relaxed),
            hits_in_flight: self.hits_in_flight.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            hits_path: 0,
            retries: self.retries.load(Ordering::Relaxed),
        }
    }
}

/// The concurrent sharded page cache.
pub struct SharedPageCache<T> {
    shards: Vec<Shard<T>>,
    stats: Vec<WorkerStats>,
    retry: RetryPolicy,
    corrupt_detected: AtomicU64,
    trace: Option<Arc<psj_obs::TraceSink>>,
}

impl<T> SharedPageCache<T> {
    /// Creates a cache holding at most `capacity` pages, split over `shards`
    /// independently locked segments, tracking stats for `workers` workers.
    ///
    /// Every shard gets at least one page, so the effective capacity is
    /// `max(capacity, shards)` when `capacity < shards`.
    ///
    /// The cache starts with [`RetryPolicy::default`] (three attempts, no
    /// backoff) — use [`SharedPageCache::with_retry`] to change it.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `workers` is zero.
    pub fn new(workers: usize, capacity: usize, shards: usize, policy: Policy) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(workers > 0, "need at least one worker");
        let per_shard = capacity.div_ceil(shards).max(1);
        SharedPageCache {
            shards: (0..shards)
                .map(|_| Shard {
                    state: Mutex::new(ShardState {
                        buf: PageBuffer::new(policy, per_shard),
                        data: HashMap::with_capacity(per_shard),
                        owner: HashMap::with_capacity(per_shard),
                        loading: HashSet::new(),
                        quarantined: HashMap::new(),
                    }),
                    loaded: Condvar::new(),
                    capacity: per_shard,
                    generation: AtomicU64::new(0),
                })
                .collect(),
            stats: (0..workers).map(|_| WorkerStats::default()).collect(),
            retry: RetryPolicy::default(),
            corrupt_detected: AtomicU64::new(0),
            trace: None,
        }
    }

    /// Replace the retry policy applied to fills (builder style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attach a trace sink (builder style): every fill that reaches the
    /// source emits a `page_read` span, every retried attempt a
    /// `page_retry` instant, and every quarantine a `page_quarantine`
    /// instant, all on the requesting worker's cache thread row. Hits stay
    /// untraced — the slow path is the only place the `Option` is checked,
    /// so a disabled trace costs nothing on the hit path.
    pub fn with_trace(mut self, trace: Arc<psj_obs::TraceSink>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// The retry policy applied to fills.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of workers stats are tracked for.
    pub fn num_workers(&self) -> usize {
        self.stats.len()
    }

    /// Maximum number of resident pages (sum of shard capacities).
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.capacity).sum()
    }

    /// Current number of resident pages.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.state.lock().unwrap().buf.len())
            .sum()
    }

    /// Whether no page is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of pages currently quarantined as corrupt.
    pub fn quarantined_pages(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.state.lock().unwrap().quarantined.len())
            .sum()
    }

    /// Whether `page` is quarantined.
    pub fn is_quarantined(&self, page: PageId) -> bool {
        self.shard_of(page)
            .state
            .lock()
            .unwrap()
            .quarantined
            .contains_key(&page)
    }

    /// Total corrupt fills detected over the cache's lifetime (monotone;
    /// counts first detections, not replays to later requesters).
    pub fn corrupt_detected(&self) -> u64 {
        self.corrupt_detected.load(Ordering::Relaxed)
    }

    #[inline]
    fn shard_of(&self, page: PageId) -> &Shard<T> {
        // Fibonacci hashing spreads the sequential page ids trees produce;
        // plain modulo would put all of a small tree in adjacent shards.
        let h = (page.0 as u64).wrapping_mul(0x9E3779B97F4A7C15);
        &self.shards[(h >> 32) as usize % self.shards.len()]
    }

    /// Counter updates run outside every shard lock (callers invoke this
    /// after dropping the shard state), so a hit holds the shard mutex only
    /// for the map probe + `Arc` clone and never serializes on stats.
    fn bump(&self, worker: usize, access: SharedAccess, evicted: bool, retries: u64) {
        let s = &self.stats[worker];
        match access {
            SharedAccess::HitLocal => s.hits_local.fetch_add(1, Ordering::Relaxed),
            SharedAccess::HitRemote { .. } => s.hits_remote.fetch_add(1, Ordering::Relaxed),
            SharedAccess::HitInFlight => s.hits_in_flight.fetch_add(1, Ordering::Relaxed),
            SharedAccess::Miss => s.misses.fetch_add(1, Ordering::Relaxed),
        };
        if evicted {
            s.evictions.fetch_add(1, Ordering::Relaxed);
        }
        if retries > 0 {
            s.retries.fetch_add(retries, Ordering::Relaxed);
        }
    }

    fn bump_retries(&self, worker: usize, retries: u64) {
        if retries > 0 {
            self.stats[worker]
                .retries
                .fetch_add(retries, Ordering::Relaxed);
        }
    }

    /// Credits `n` hits absorbed by `worker`'s private L1 front. The front
    /// accumulates locally and flushes through here before any stats read,
    /// keeping [`SharedPageCache::stats`] exact.
    pub fn add_l1_hits(&self, worker: usize, n: u64) {
        if n > 0 {
            self.stats[worker].hits_l1.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current generation of the shard holding `page`. The generation
    /// advances whenever any page leaves that shard (eviction or
    /// quarantine); a value read *before* a successful
    /// [`SharedPageCache::try_get`] therefore certifies, for as long as it
    /// remains current, that the returned page is still resident.
    pub fn shard_generation(&self, page: PageId) -> u64 {
        self.shard_of(page).generation.load(Ordering::Acquire)
    }

    /// Looks up `page`, fetching it from `source` on a miss. Returns the
    /// cached value and how the request was satisfied.
    ///
    /// `worker` indexes the per-worker statistics and is recorded as the
    /// page's owner when this call fetches it.
    ///
    /// # Panics
    ///
    /// Panics if the source's fetch fails; use [`SharedPageCache::try_get`]
    /// for fallible sources (e.g. a disk-backed pager).
    pub fn get<S>(&self, worker: usize, page: PageId, source: &S) -> (Arc<T>, SharedAccess)
    where
        S: PageSource<Item = T> + ?Sized,
    {
        self.try_get(worker, page, source)
            .unwrap_or_else(|e| panic!("fetching page {page}: {e}"))
    }

    /// As [`SharedPageCache::get`], propagating a failed fetch to the caller
    /// instead of panicking.
    ///
    /// Retryable source errors are retried in place under the cache's
    /// [`RetryPolicy`] before failing. A final *corrupt* error quarantines
    /// the page — the stored error is replayed to every later requester
    /// without re-fetching. Any other final error caches nothing and clears
    /// the in-flight marker, so concurrent waiters on the same page wake up
    /// and retry the fetch themselves; one degraded request does not poison
    /// the page for others.
    pub fn try_get<S>(
        &self,
        worker: usize,
        page: PageId,
        source: &S,
    ) -> Result<(Arc<T>, SharedAccess), PageError>
    where
        S: PageSource<Item = T> + ?Sized,
    {
        let shard = self.shard_of(page);
        let mut state = shard.state.lock().unwrap();
        let mut waited = false;
        loop {
            if let Some(err) = state.quarantined.get(&page) {
                let err = err.clone();
                drop(state);
                return Err(err);
            }
            if let Some(value) = state.data.get(&page) {
                let value = Arc::clone(value);
                state.buf.touch(page);
                let access = if waited {
                    SharedAccess::HitInFlight
                } else {
                    match state.owner.get(&page) {
                        Some(&o) if o == worker => SharedAccess::HitLocal,
                        Some(&o) => SharedAccess::HitRemote { owner: o },
                        // Unreachable in practice (resident ⇒ owned), but a
                        // local hit is the safe default.
                        None => SharedAccess::HitLocal,
                    }
                };
                drop(state);
                self.bump(worker, access, false, 0);
                return Ok((value, access));
            }
            if state.loading.contains(&page) {
                // Someone else is fetching this page: wait for their load
                // rather than issuing a second fetch (paper §3.1). If that
                // load *fails*, the marker is cleared and the wakeup sends
                // us around the loop to retry the fetch ourselves (or to
                // pick up the quarantine entry if it was corrupt).
                waited = true;
                state = shard.loaded.wait(state).unwrap();
                continue;
            }
            // We fetch. Mark in flight and release the shard lock so other
            // pages of this shard stay accessible during the fetch.
            state.loading.insert(page);
            drop(state);
            let fill_start = self.trace.as_ref().map(|t| t.now_ns());
            let (fetched, retries) = match &self.trace {
                None => self.retry.run(page.0 as u64, |_| source.fetch_page(page)),
                Some(t) => self.retry.run_observed(
                    page.0 as u64,
                    |_| source.fetch_page(page),
                    |attempt, _| {
                        t.instant(
                            psj_obs::trace::cache_tid(worker),
                            "page_retry",
                            "storage",
                            &[("page", page.0 as u64), ("attempt", attempt as u64)],
                        );
                    },
                ),
            };
            if let (Some(t), Some(start)) = (&self.trace, fill_start) {
                t.span(
                    psj_obs::trace::cache_tid(worker),
                    "page_read",
                    "storage",
                    start,
                    &[
                        ("page", page.0 as u64),
                        ("worker", worker as u64),
                        ("retries", retries),
                        ("ok", fetched.is_ok() as u64),
                    ],
                );
            }
            let mut state = shard.state.lock().unwrap();
            state.loading.remove(&page);
            let value = match fetched {
                Ok(v) => Arc::new(v),
                Err(e) => {
                    if e.is_corrupt() {
                        // Unrecoverable: quarantine so later requesters get
                        // the typed error without hitting the device again.
                        state.quarantined.insert(page, e.clone());
                        // Conservatively invalidate L1 slots for this shard:
                        // no front may keep serving a page the shard now
                        // refuses.
                        shard.generation.fetch_add(1, Ordering::Release);
                        self.corrupt_detected.fetch_add(1, Ordering::Relaxed);
                        if let Some(t) = &self.trace {
                            t.instant(
                                psj_obs::trace::cache_tid(worker),
                                "page_quarantine",
                                "storage",
                                &[("page", page.0 as u64)],
                            );
                        }
                    }
                    drop(state);
                    shard.loaded.notify_all();
                    self.bump_retries(worker, retries);
                    return Err(e);
                }
            };
            let mut evicted = false;
            if let Some(victim) = state.buf.insert(page) {
                state.data.remove(&victim);
                state.owner.remove(&victim);
                // The victim left the shard: invalidate generation-checked
                // L1 slots before any reader can observe the new residency.
                shard.generation.fetch_add(1, Ordering::Release);
                evicted = true;
            }
            state.data.insert(page, Arc::clone(&value));
            state.owner.insert(page, worker);
            drop(state);
            shard.loaded.notify_all();
            self.bump(worker, SharedAccess::Miss, evicted, retries);
            return Ok((value, SharedAccess::Miss));
        }
    }

    /// Read-only residency test (no promotion, no stats).
    pub fn contains(&self, page: PageId) -> bool {
        self.shard_of(page).state.lock().unwrap().buf.contains(page)
    }

    /// One worker's statistics.
    pub fn stats(&self, worker: usize) -> BufferStats {
        self.stats[worker].snapshot()
    }

    /// Per-worker statistics, indexed by worker.
    pub fn per_worker_stats(&self) -> Vec<BufferStats> {
        self.stats.iter().map(WorkerStats::snapshot).collect()
    }

    /// Aggregated statistics over all workers.
    pub fn total_stats(&self) -> BufferStats {
        self.per_worker_stats()
            .iter()
            .fold(BufferStats::default(), |acc, s| acc.merged(s))
    }

    /// A point-in-time view of the cache: aggregate counters plus residency.
    ///
    /// Counters are monotone, so the delta between two snapshots
    /// ([`CacheSnapshot::since`]) isolates the activity in between — the
    /// serving layer takes one snapshot at startup and reports deltas in its
    /// stats endpoint without ever resetting the live counters.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            stats: self.total_stats(),
            resident_pages: self.len(),
            capacity_pages: self.capacity(),
            quarantined_pages: self.quarantined_pages(),
            corrupt_detected: self.corrupt_detected(),
        }
    }

    /// Structural invariant check for tests; call only while no access is
    /// concurrently in flight.
    ///
    /// Verifies, per shard: residency within capacity, the value and owner
    /// maps exactly mirror the residency buffer, no load marked in flight,
    /// and no quarantined page resident. Globally: every worker's counters
    /// are internally consistent (`requests() == hits + misses` holds by
    /// construction of [`BufferStats::requests`]).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, shard) in self.shards.iter().enumerate() {
            let state = shard.state.lock().unwrap();
            if state.buf.len() > shard.capacity {
                return Err(format!(
                    "shard {i}: {} resident pages exceed capacity {}",
                    state.buf.len(),
                    shard.capacity
                ));
            }
            if state.data.len() != state.buf.len() || state.owner.len() != state.buf.len() {
                return Err(format!(
                    "shard {i}: maps out of sync (buf {}, data {}, owner {})",
                    state.buf.len(),
                    state.data.len(),
                    state.owner.len()
                ));
            }
            for page in state.data.keys() {
                if !state.buf.contains(*page) {
                    return Err(format!("shard {i}: cached page {page} not resident"));
                }
                if !state.owner.contains_key(page) {
                    return Err(format!("shard {i}: cached page {page} has no owner"));
                }
            }
            if !state.loading.is_empty() {
                return Err(format!(
                    "shard {i}: {} loads still marked in flight at rest",
                    state.loading.len()
                ));
            }
            for page in state.quarantined.keys() {
                if state.buf.contains(*page) {
                    return Err(format!("shard {i}: quarantined page {page} is resident"));
                }
            }
            for owner in state.owner.values() {
                if *owner >= self.stats.len() {
                    return Err(format!("shard {i}: owner {owner} out of range"));
                }
            }
        }
        Ok(())
    }
}

impl<T> std::fmt::Debug for SharedPageCache<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedPageCache")
            .field("shards", &self.shards.len())
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("quarantined", &self.quarantined_pages())
            .finish()
    }
}

/// A point-in-time view of a [`SharedPageCache`], from
/// [`SharedPageCache::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Aggregate counters over all workers at snapshot time.
    pub stats: BufferStats,
    /// Pages resident at snapshot time.
    pub resident_pages: usize,
    /// Maximum resident pages (constant over the cache's life).
    pub capacity_pages: usize,
    /// Pages quarantined as corrupt at snapshot time.
    pub quarantined_pages: usize,
    /// Corrupt fills detected so far (monotone).
    pub corrupt_detected: u64,
}

impl CacheSnapshot {
    /// Counter activity between `earlier` and this snapshot (both must be
    /// of the same cache, this one taken later).
    pub fn since(&self, earlier: &CacheSnapshot) -> BufferStats {
        self.stats.since(&earlier.stats)
    }
}

impl PageSource for psj_store::FilePager {
    type Item = Page;

    fn fetch_page(&self, page: PageId) -> Result<Page, PageError> {
        self.read_page(page)
    }

    fn page_count(&self) -> usize {
        self.num_pages()
    }
}

impl PageSource for psj_store::FaultPager {
    type Item = Page;

    fn fetch_page(&self, page: PageId) -> Result<Page, PageError> {
        self.read_page(page)
    }

    fn page_count(&self) -> usize {
        self.num_pages()
    }
}

/// A fault-injecting decorator over any [`PageSource`].
///
/// For *decoded* sources (nodes, not raw bytes) there are no record bytes
/// to flip, so permanent flip/torn faults from the [`FaultPlan`] are
/// synthesized directly as [`PageError::Corrupt`] (see
/// [`FaultPlan::before_fetch`]); transient faults and latency behave
/// exactly as in the byte-level [`psj_store::FaultPager`].
#[derive(Debug)]
pub struct FaultSource<S> {
    inner: S,
    plan: Arc<FaultPlan>,
}

impl<S: PageSource> FaultSource<S> {
    /// Wrap `inner` with the fault plan.
    pub fn new(inner: S, plan: Arc<FaultPlan>) -> Self {
        FaultSource { inner, plan }
    }

    /// The fault plan driving this source.
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: PageSource> PageSource for FaultSource<S> {
    type Item = S::Item;

    fn fetch_page(&self, page: PageId) -> Result<S::Item, PageError> {
        self.plan.before_fetch(page)?;
        self.inner.fetch_page(page)
    }

    fn page_count(&self) -> usize {
        self.inner.page_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A source that counts fetches and returns the page number.
    struct Counting {
        fetches: AtomicU64,
        pages: usize,
    }

    impl Counting {
        fn new(pages: usize) -> Self {
            Counting {
                fetches: AtomicU64::new(0),
                pages,
            }
        }
    }

    impl PageSource for Counting {
        type Item = u32;

        fn fetch_page(&self, page: PageId) -> Result<u32, PageError> {
            self.fetches.fetch_add(1, Ordering::Relaxed);
            Ok(page.0)
        }

        fn page_count(&self) -> usize {
            self.pages
        }
    }

    /// A source that fails the first `failures` fetches with a transient
    /// (retryable) error.
    struct Flaky {
        failures: AtomicU64,
    }

    impl PageSource for Flaky {
        type Item = u32;

        fn fetch_page(&self, page: PageId) -> Result<u32, PageError> {
            if self
                .failures
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |f| f.checked_sub(1))
                .is_ok()
            {
                return Err(PageError::io(
                    page,
                    io::ErrorKind::Other,
                    "simulated bad read",
                ));
            }
            Ok(page.0)
        }

        fn page_count(&self) -> usize {
            100
        }
    }

    /// A source that always reports its pages corrupt.
    struct Rotten;

    impl PageSource for Rotten {
        type Item = u32;

        fn fetch_page(&self, page: PageId) -> Result<u32, PageError> {
            Err(PageError::Corrupt {
                page,
                context: "rotten source".into(),
            })
        }

        fn page_count(&self) -> usize {
            100
        }
    }

    fn p(n: u32) -> PageId {
        PageId(n)
    }

    #[test]
    fn miss_then_local_hit() {
        let cache: SharedPageCache<u32> = SharedPageCache::new(2, 8, 2, Policy::Lru);
        let src = Counting::new(100);
        let (v, a) = cache.get(0, p(5), &src);
        assert_eq!((*v, a), (5, SharedAccess::Miss));
        let (v, a) = cache.get(0, p(5), &src);
        assert_eq!((*v, a), (5, SharedAccess::HitLocal));
        assert_eq!(src.fetches.load(Ordering::Relaxed), 1);
        cache.check_invariants().unwrap();
    }

    #[test]
    fn traced_fills_emit_read_retry_and_quarantine_events() {
        let sink = psj_obs::TraceSink::new(1 << 12);
        let cache: SharedPageCache<u32> =
            SharedPageCache::new(2, 8, 2, Policy::Lru).with_trace(Arc::clone(&sink));

        // A clean miss: one page_read span, no retry instants.
        let src = Counting::new(100);
        cache.get(0, p(1), &src);
        // A hit: no new events (the fast path never sees the sink).
        cache.get(0, p(1), &src);
        assert_eq!(sink.event_count(), 1);

        // Two transient failures then success: two page_retry instants
        // plus the page_read span.
        let flaky = Flaky {
            failures: AtomicU64::new(2),
        };
        cache.try_get(1, p(2), &flaky).unwrap();
        assert_eq!(sink.event_count(), 4);

        // Corruption: page_read span + page_quarantine instant.
        assert!(cache.try_get(0, p(3), &Rotten).is_err());
        assert_eq!(sink.event_count(), 6);

        let mut out = Vec::new();
        sink.write_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let summary = psj_obs::validate_jsonl(&text).unwrap();
        assert_eq!(summary.spans, 3, "{text}");
        assert_eq!(summary.instants, 3, "{text}");
        assert!(text.contains("page_quarantine"));
        assert!(text.contains("page_retry"));
    }

    #[test]
    fn hit_by_other_worker_is_remote() {
        let cache: SharedPageCache<u32> = SharedPageCache::new(3, 8, 2, Policy::Lru);
        let src = Counting::new(100);
        cache.get(2, p(7), &src);
        let (_, a) = cache.get(0, p(7), &src);
        assert_eq!(a, SharedAccess::HitRemote { owner: 2 });
        let total = cache.total_stats();
        assert_eq!(total.misses, 1);
        assert_eq!(total.hits_remote, 1);
        assert_eq!(cache.stats(0).hits_remote, 1);
        assert_eq!(cache.stats(2).misses, 1);
    }

    #[test]
    fn eviction_keeps_capacity_and_drops_value() {
        let cache: SharedPageCache<u32> = SharedPageCache::new(1, 4, 1, Policy::Lru);
        let src = Counting::new(100);
        for n in 0..10 {
            cache.get(0, p(n), &src);
            assert!(cache.len() <= cache.capacity());
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.total_stats().evictions, 6);
        // Re-reading an evicted page re-fetches.
        assert!(!cache.contains(p(0)));
        let (_, a) = cache.get(0, p(0), &src);
        assert_eq!(a, SharedAccess::Miss);
        cache.check_invariants().unwrap();
    }

    #[test]
    fn pinned_value_survives_eviction() {
        let cache: SharedPageCache<u32> = SharedPageCache::new(1, 1, 1, Policy::Lru);
        let src = Counting::new(100);
        let (pinned, _) = cache.get(0, p(1), &src);
        for n in 2..6 {
            cache.get(0, p(n), &src); // evicts p1 and successors
        }
        assert!(!cache.contains(p(1)));
        assert_eq!(*pinned, 1, "Arc keeps the evicted value alive");
    }

    #[test]
    fn capacity_rounds_up_per_shard() {
        let cache: SharedPageCache<u32> = SharedPageCache::new(1, 10, 4, Policy::Lru);
        // 10 / 4 rounds to 3 per shard: effective capacity 12.
        assert_eq!(cache.capacity(), 12);
        let tiny: SharedPageCache<u32> = SharedPageCache::new(1, 0, 3, Policy::Lru);
        assert_eq!(tiny.capacity(), 3, "every shard holds at least one page");
    }

    #[test]
    fn fetch_count_equals_misses() {
        let cache: SharedPageCache<u32> = SharedPageCache::new(4, 64, 4, Policy::Lru);
        let src = Counting::new(40);
        for round in 0..3 {
            for n in 0..40 {
                let (v, _) = cache.get((n as usize + round) % 4, p(n), &src);
                assert_eq!(*v, n);
            }
        }
        let total = cache.total_stats();
        assert_eq!(total.misses, 40, "big cache: one miss per distinct page");
        assert_eq!(src.fetches.load(Ordering::Relaxed), total.misses);
        assert_eq!(total.requests(), 120);
        cache.check_invariants().unwrap();
    }

    #[test]
    fn concurrent_single_fetch_per_page() {
        let cache: SharedPageCache<u32> = SharedPageCache::new(8, 128, 4, Policy::Lru);
        let src = Counting::new(64);
        std::thread::scope(|scope| {
            for w in 0..8 {
                let cache = &cache;
                let src = &src;
                scope.spawn(move || {
                    for n in 0..64u32 {
                        let (v, _) = cache.get(w, p(n), src);
                        assert_eq!(*v, n);
                    }
                });
            }
        });
        // Big enough cache: despite 8 threads racing on every page, each
        // page was fetched exactly once.
        assert_eq!(src.fetches.load(Ordering::Relaxed), 64);
        let total = cache.total_stats();
        assert_eq!(total.misses, 64);
        assert_eq!(total.requests(), 8 * 64);
        cache.check_invariants().unwrap();
    }

    #[test]
    fn policies_dispatch() {
        for policy in [Policy::Lru, Policy::Fifo, Policy::Clock] {
            let cache: SharedPageCache<u32> = SharedPageCache::new(1, 3, 1, policy);
            let src = Counting::new(10);
            for n in 0..5 {
                cache.get(0, p(n), &src);
            }
            assert_eq!(cache.len(), 3, "{policy:?}");
            assert!(cache.contains(p(4)), "{policy:?} keeps newest");
            cache.check_invariants().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _: SharedPageCache<u32> = SharedPageCache::new(1, 4, 0, Policy::Lru);
    }

    #[test]
    fn failed_fetch_degrades_one_request_only() {
        // RetryPolicy::none so the single injected failure is not absorbed.
        let cache: SharedPageCache<u32> =
            SharedPageCache::new(1, 8, 2, Policy::Lru).with_retry(RetryPolicy::none());
        let src = Flaky {
            failures: AtomicU64::new(1),
        };
        let err = cache.try_get(0, p(3), &src).unwrap_err();
        assert!(matches!(err, PageError::Io { .. }));
        cache.check_invariants().unwrap();
        assert!(!cache.contains(p(3)), "failed fetch caches nothing");
        // The very next request retries the source and succeeds.
        let (v, a) = cache.try_get(0, p(3), &src).unwrap();
        assert_eq!((*v, a), (3, SharedAccess::Miss));
        cache.check_invariants().unwrap();
    }

    #[test]
    fn transient_errors_absorbed_by_retry_policy() {
        // Default policy: 3 attempts. Two failures are retried in place and
        // the request still succeeds, with the retries counted.
        let cache: SharedPageCache<u32> = SharedPageCache::new(1, 8, 2, Policy::Lru);
        let src = Flaky {
            failures: AtomicU64::new(2),
        };
        let (v, a) = cache.try_get(0, p(3), &src).unwrap();
        assert_eq!((*v, a), (3, SharedAccess::Miss));
        assert_eq!(cache.total_stats().retries, 2);
        assert_eq!(cache.total_stats().misses, 1);
        cache.check_invariants().unwrap();
    }

    #[test]
    fn retry_budget_exhaustion_fails_and_counts() {
        let cache: SharedPageCache<u32> = SharedPageCache::new(1, 8, 2, Policy::Lru);
        let src = Flaky {
            failures: AtomicU64::new(10),
        };
        let err = cache.try_get(0, p(3), &src).unwrap_err();
        assert!(matches!(err, PageError::Io { .. }));
        // 3 attempts = 2 retries, all counted even though the fill failed.
        assert_eq!(cache.total_stats().retries, 2);
        assert!(!cache.contains(p(3)));
        cache.check_invariants().unwrap();
    }

    #[test]
    fn corrupt_fill_quarantines_and_replays() {
        let cache: SharedPageCache<u32> = SharedPageCache::new(2, 8, 2, Policy::Lru);
        let src = Rotten;
        let err = cache.try_get(0, p(9), &src).unwrap_err();
        assert!(err.is_corrupt());
        assert!(cache.is_quarantined(p(9)));
        assert_eq!(cache.quarantined_pages(), 1);
        assert_eq!(cache.corrupt_detected(), 1);
        // A later request (different worker) replays the stored error
        // without touching the source again.
        let counting_gate = Counting::new(100); // healthy source
        let replay = cache.try_get(1, p(9), &counting_gate).unwrap_err();
        assert!(replay.is_corrupt());
        assert_eq!(
            counting_gate.fetches.load(Ordering::Relaxed),
            0,
            "quarantined page never re-fetched"
        );
        assert_eq!(cache.corrupt_detected(), 1, "replays are not re-detections");
        // Healthy pages are unaffected.
        let (v, _) = cache.try_get(0, p(10), &counting_gate).unwrap();
        assert_eq!(*v, 10);
        cache.check_invariants().unwrap();
    }

    #[test]
    fn concurrent_waiters_survive_a_failed_fetch() {
        let cache: SharedPageCache<u32> =
            SharedPageCache::new(8, 64, 2, Policy::Lru).with_retry(RetryPolicy::none());
        let src = Flaky {
            failures: AtomicU64::new(3),
        };
        let ok = AtomicU64::new(0);
        let failed = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for w in 0..8 {
                let cache = &cache;
                let src = &src;
                let ok = &ok;
                let failed = &failed;
                scope.spawn(move || {
                    for n in 0..16u32 {
                        match cache.try_get(w, p(n), src) {
                            Ok((v, _)) => {
                                assert_eq!(*v, n);
                                ok.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(
            failed.load(Ordering::Relaxed),
            3,
            "each failure hits one request"
        );
        assert_eq!(ok.load(Ordering::Relaxed), 8 * 16 - 3);
        cache.check_invariants().unwrap();
    }

    #[test]
    fn concurrent_waiters_on_a_corrupt_page_all_get_the_typed_error() {
        let cache: SharedPageCache<u32> = SharedPageCache::new(8, 64, 2, Policy::Lru);
        let src = Rotten;
        let corrupt = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for w in 0..8 {
                let cache = &cache;
                let src = &src;
                let corrupt = &corrupt;
                scope.spawn(move || match cache.try_get(w, p(5), src) {
                    Err(e) if e.is_corrupt() => {
                        corrupt.fetch_add(1, Ordering::Relaxed);
                    }
                    other => panic!("expected corrupt error, got {other:?}"),
                });
            }
        });
        assert_eq!(corrupt.load(Ordering::Relaxed), 8);
        assert_eq!(cache.corrupt_detected(), 1, "one detection, many replays");
        cache.check_invariants().unwrap();
    }

    #[test]
    fn fault_source_injects_per_plan() {
        let plan = Arc::new(FaultPlan::new(21).with_transient(1.0, 1));
        let src = FaultSource::new(Counting::new(100), plan.clone());
        // Default retry policy (3 attempts) absorbs the burst of 1.
        let cache: SharedPageCache<u32> = SharedPageCache::new(1, 32, 2, Policy::Lru);
        for n in 0..20 {
            let (v, _) = cache.try_get(0, p(n), &src).unwrap();
            assert_eq!(*v, n);
        }
        assert_eq!(plan.transient_injected(), 20);
        assert_eq!(cache.total_stats().retries, plan.transient_injected());
        cache.check_invariants().unwrap();
    }

    #[test]
    fn fault_source_corruption_quarantines() {
        let plan = Arc::new(FaultPlan::new(22).with_flip(0.5));
        let src = FaultSource::new(Counting::new(100), plan.clone());
        let cache: SharedPageCache<u32> = SharedPageCache::new(1, 64, 2, Policy::Lru);
        let mut corrupt = 0;
        for n in 0..40 {
            match cache.try_get(0, p(n), &src) {
                Ok((v, _)) => assert_eq!(*v, n),
                Err(e) => {
                    assert!(e.is_corrupt());
                    corrupt += 1;
                }
            }
        }
        assert!(corrupt > 0, "plan with flip=0.5 should poison some pages");
        assert_eq!(cache.quarantined_pages(), corrupt);
        assert_eq!(cache.corrupt_detected(), corrupt as u64);
        cache.check_invariants().unwrap();
    }

    #[test]
    fn snapshot_delta_isolates_activity() {
        let cache: SharedPageCache<u32> = SharedPageCache::new(2, 16, 2, Policy::Lru);
        let src = Counting::new(100);
        for n in 0..8 {
            cache.get(0, p(n), &src);
        }
        let before = cache.snapshot();
        assert_eq!(before.stats.misses, 8);
        assert_eq!(before.resident_pages, 8);
        for n in 0..8 {
            cache.get(1, p(n), &src); // all remote hits
        }
        let after = cache.snapshot();
        let delta = after.since(&before);
        assert_eq!(delta.misses, 0);
        assert_eq!(delta.hits_remote, 8);
        assert_eq!(delta.requests(), 8);
        assert_eq!(after.capacity_pages, cache.capacity());
        assert_eq!(after.quarantined_pages, 0);
    }
}
