//! A concurrent, lock-sharded page cache for the native executor.
//!
//! The paper's buffer layer ([`crate::LocalBuffers`], [`crate::GlobalBuffer`])
//! is single-threaded: the discrete-event simulator interleaves processors
//! deterministically, so plain `&mut` access suffices. The native executor
//! runs real OS threads, which need a cache that is *correct under
//! concurrency* while preserving the paper's semantics:
//!
//! * bounded residency — at most `capacity` pages cached across all shards,
//! * single fetch per page — concurrent requesters of a non-resident page
//!   wait for the one in-flight load instead of fetching twice (the paper's
//!   §3.1 in-flight mechanism, here a per-shard condvar),
//! * per-worker [`BufferStats`] distinguishing local hits, *remote* hits
//!   (page cached by a different worker — the global organization's
//!   interconnect traffic), in-flight waits, misses, and evictions,
//! * pluggable replacement [`Policy`] via the existing [`PageBuffer`]
//!   machinery, LRU by default.
//!
//! The cache is generic over what a page decodes to (`T`): the native join
//! caches decoded R\*-tree nodes, the pager tests cache raw 4 KB pages.
//! Values are handed out as `Arc<T>`, so a page a worker is still using
//! ("pinned") stays valid even if the cache evicts it concurrently —
//! eviction only drops the cache's reference.
//!
//! Sharding: a page's shard is `hash(page) % shards`. Each shard has its own
//! mutex, residency buffer (`capacity / shards` pages, ≥ 1), and condvar, so
//! disjoint pages contend only 1/N of the time. With `shards == 1` the cache
//! degenerates to a single global lock — the configuration a per-worker
//! *local* buffer uses, since it is uncontended anyway.
//!
//! ## Failure handling
//!
//! Fills are fallible and typed ([`psj_store::PageError`]). The cache owns
//! the retry policy for the whole stack: a transient source error is
//! retried in place under the cache's [`RetryPolicy`] (counted in
//! [`BufferStats::retries`]), so neither the pager below nor the executor
//! above needs its own loop. A *corrupt* fill (checksum mismatch) is never
//! retried — the page is **quarantined** in its shard: the original error
//! is stored and replayed to every later requester without touching the
//! source again, so one poisoned page degrades exactly the requests that
//! need it while the device is spared a re-read storm.
//!
//! ## Optimistic reads (seqlock)
//!
//! Hits on resident pages take **no shard mutex**. Each shard carries a
//! version-stamped seqlock word (odd = a structural mutation is in
//! progress) plus a fixed open-addressed *mirror* of atomic slots — one
//! `(tag, owner, payload pointer, pin count)` quadruple per resident page.
//! A reader snapshots the version, probes the mirror, *pins* the matching
//! slot, re-validates the version, and only then clones the `Arc` out of
//! the slot; any mismatch unpins and retries, and after
//! [`OPT_ATTEMPTS`](SharedPageCache) failed validations the read falls
//! back to the pessimistic mutex path (a bounded `repeat`-style protocol).
//! Mutations — fills, evictions, quarantine — keep the mutex+condvar write
//! path but bump the version to odd around every *removal* and wait for
//! the victim slot's pin count to drain before freeing its payload, so a
//! validated pin is a guarantee the pointee outlives the clone. Inserts
//! into empty slots publish the tag last (release) and need no version
//! bump, which preserves the old `generation` semantics exactly: the word
//! advances precisely when a resident page leaves the shard, and the
//! per-worker [`L1Front`](crate::L1Front) keeps validating against it via
//! [`SharedPageCache::shard_generation`]. Optimistic hits skip replacement
//! promotion (`touch`) by design — a hot page served optimistically is,
//! by definition, recently used, and the pessimistic path still promotes.
//! Per-read statistics are striped per worker (relaxed atomics on
//! cacheline-padded counters), so a hot root page never touches a
//! contended line; the seqlock-path counters are surfaced separately as
//! [`OptStats`].
//!
//! ## Borrowing guards and coupled descent
//!
//! [`PageGuard`] is the zero-copy variant of the optimistic read: instead
//! of cloning the `Arc` under the pin and releasing it, the winning read
//! *keeps* its pin and hands out `&T` directly — no refcount traffic at
//! all on the hot descent path. To make that safe, removal no longer
//! waits for pins to drain: a reader may legitimately hold a guard on the
//! victim page *while* performing the pessimistic fill that evicts it, so
//! a pin-drain wait would deadlock against the waiter's own pin. Instead
//! [`Shard::mirror_remove`] clears the slot and, if pins remain, retires
//! the payload's strong reference to a per-shard *graveyard* that later
//! sweeps free once the pins drain. The Dekker pairing is unchanged:
//! either the reader's validation fails, or its pin is visible to the
//! remover — which now defers the free instead of spinning on it.
//!
//! [`OptCoupling`] chains guard reads across the levels of a descent
//! (umolc-style coupled validation): acquiring the child guard
//! revalidates the parent's seqlock version, so a root-to-leaf path forms
//! one validation chain. A version advance with the parent still resident
//! *renews* the chain; a vanished parent *breaks* it — the child guard is
//! dropped and the caller falls back per-page to the pessimistic path,
//! so correctness never depends on the chain.
//!
//! Because optimistic and guard hits skip replacement promotion, every
//! [`TOUCH_SAMPLE`]-th such hit per worker re-touches the page under a
//! `try_lock`, keeping hammered pages near the MRU end of their shard's
//! replacement order even when cold fills churn it.

use crate::policy::{PageBuffer, Policy};
use crate::stats::{BufferStats, OptStats};
use psj_store::{lock_clean, wait_clean, FaultPlan, Page, PageError, PageId, RetryPolicy};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Where a page's bytes come from on a cache miss.
///
/// Implemented by the disk-backed [`psj_store::FilePager`] (raw pages) and,
/// in `psj-core`, by an adapter over `PagedTree` (decoded nodes).
pub trait PageSource {
    /// What a fetched page decodes to.
    type Item;

    /// Fetches/decodes `page`. Called outside all cache locks; concurrent
    /// calls for *distinct* pages may overlap, the cache guarantees at most
    /// one in-flight fetch per page. Retryable failures are retried by the
    /// cache under its [`RetryPolicy`]; a corrupt result quarantines the
    /// page; other final failures are propagated to the requester by
    /// [`SharedPageCache::try_get`] and cached nowhere — the next request
    /// for the page retries the source.
    fn fetch_page(&self, page: PageId) -> Result<Self::Item, PageError>;

    /// Total number of pages this source can serve (page ids `0..n`).
    fn page_count(&self) -> usize;
}

/// How a request was satisfied; returned so callers can account costs
/// (e.g. charge an interconnect penalty for remote hits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharedAccess {
    /// Cached, and this worker was the one who loaded it.
    HitLocal,
    /// Cached by a different worker (`owner`): the global organization
    /// serves this over the interconnect.
    HitRemote {
        /// Worker whose fetch brought the page in.
        owner: usize,
    },
    /// Another worker's fetch was in flight; this request waited for it.
    HitInFlight,
    /// Not cached: this worker fetched it from the source.
    Miss,
}

struct ShardState<T> {
    /// Residency + replacement order over this shard's pages.
    buf: PageBuffer,
    /// Cached values for resident pages.
    data: HashMap<PageId, Arc<T>>,
    /// Worker whose fetch loaded each resident page.
    owner: HashMap<PageId, usize>,
    /// Pages some worker is currently fetching.
    loading: HashSet<PageId>,
    /// Pages whose fill returned a corrupt (unrecoverable) error: the
    /// stored error is replayed to every later requester.
    quarantined: HashMap<PageId, PageError>,
}

/// Validation attempts an optimistic read makes before falling back to the
/// pessimistic mutex path. Low on purpose: a failed validation means a
/// writer is churning this shard right now, and queueing on the mutex is
/// cheaper than spinning through its critical section.
const OPT_ATTEMPTS: usize = 3;

/// Linear-probe window in the mirror. With the mirror sized at 2× the
/// shard's capacity (load factor ≤ 0.5) a window of 8 makes an
/// unmirrorable page vanishingly rare; such a page is still served
/// correctly, just pessimistically.
const MIRROR_PROBE: usize = 8;

/// Tag value of an empty mirror slot ([`OptSlot::tag`]).
const TAG_EMPTY: u64 = 0;

/// Every `TOUCH_SAMPLE`-th optimistic or guard hit per worker re-touches
/// the page in its shard's replacement order (under `try_lock`, skipped
/// when the mutex is busy). Optimistic hits otherwise never promote, so a
/// permanently hot page would look idle to the LRU and could be evicted
/// by a stream of cold fills; sampling keeps the promotion cost off the
/// hot path while bounding how stale a hot page's recency can get.
const TOUCH_SAMPLE: u64 = 64;

/// One slot of a shard's lock-free mirror: the subset of shard state an
/// optimistic reader needs, republished as atomics. All *writes* happen
/// under the shard mutex (there is exactly one mutator at a time); readers
/// never write anything but `pins`.
struct OptSlot<T> {
    /// `page.0 + 1` for an occupied slot, [`TAG_EMPTY`] otherwise. Stored
    /// `Release` *after* `ptr`/`owner` on insert, so a reader that observes
    /// the tag observes the payload.
    tag: AtomicU64,
    /// Worker whose fetch loaded the page (mirrors `ShardState::owner`).
    owner: AtomicUsize,
    /// `Arc::into_raw` of the mirror's own strong reference to the value.
    /// Null iff the slot is empty.
    ptr: AtomicPtr<T>,
    /// Readers between "validated the version" and "cloned the Arc" hold a
    /// pin; a remover waits for pins to drain (after flipping the version
    /// odd) before releasing the slot's reference. SeqCst pairs the
    /// reader's `pin ; load version` against the writer's
    /// `store version ; load pins` (Dekker), so either the reader sees the
    /// odd/advanced version and aborts, or the writer sees the pin and
    /// waits.
    pins: AtomicUsize,
}

impl<T> OptSlot<T> {
    fn empty() -> Self {
        OptSlot {
            tag: AtomicU64::new(TAG_EMPTY),
            owner: AtomicUsize::new(0),
            ptr: AtomicPtr::new(std::ptr::null_mut()),
            pins: AtomicUsize::new(0),
        }
    }
}

/// A mirror payload whose slot was unpublished while readers still held
/// pins on it. The remover transfers the mirror's strong reference here
/// instead of blocking on the drain; [`Shard::sweep_graveyard`] frees it
/// once the slot's pin count has been observed at zero.
struct Retired<T> {
    /// Index of the mirror slot the payload was published in.
    slot: usize,
    /// The `Arc::into_raw` strong reference the mirror gave up.
    ptr: *const T,
}

// SAFETY: a retired entry owns an `Arc` strong reference (as a raw
// pointer); moving it between threads moves that ownership, which is safe
// exactly when `Arc<T>` itself is sendable.
unsafe impl<T: Send + Sync> Send for Retired<T> {}

struct Shard<T> {
    state: Mutex<ShardState<T>>,
    loaded: Condvar,
    capacity: usize,
    /// The seqlock word (absorbs the old `generation` counter). Odd while
    /// a mutator is removing a resident page; advances (by 2) exactly when
    /// a page leaves the shard — eviction or quarantine. A reader holding
    /// `(page, version)` from an earlier access knows the page is still
    /// resident while the version is unchanged; both the optimistic read
    /// path and the per-worker [`L1Front`](crate::L1Front) validate
    /// against it.
    version: AtomicU64,
    /// Lock-free mirror of the resident-page table; power-of-two sized.
    mirror: Box<[OptSlot<T>]>,
    /// Payloads unpublished from the mirror while still pinned (a
    /// [`PageGuard`] was outstanding). Swept opportunistically on every
    /// mirror mutation and drained by [`SharedPageCache::check_invariants`]
    /// and `Drop`. Its own mutex (not `state`): sweeps must be safe from a
    /// thread that already holds — or is about to take — the state lock.
    graveyard: Mutex<Vec<Retired<T>>>,
}

impl<T> Shard<T> {
    /// Slot probe sequence for `page`: start index plus the next
    /// [`MIRROR_PROBE`]-1 slots, wrapping. Decorrelated from shard
    /// selection (which consumes the hash's top bits) by using the low
    /// bits.
    #[inline]
    fn slot_base(&self, page: PageId) -> usize {
        let h = (page.0 as u64).wrapping_mul(0x9E3779B97F4A7C15);
        h as usize & (self.mirror.len() - 1)
    }

    #[inline]
    fn tag_of(page: PageId) -> u64 {
        page.0 as u64 + 1
    }

    /// Begins a structural mutation: flips the version odd. Callers hold
    /// the shard mutex (one mutator at a time) and must pair with
    /// [`Shard::end_mutate`].
    fn begin_mutate(&self) {
        let v = self.version.fetch_add(1, Ordering::SeqCst);
        debug_assert!(v.is_multiple_of(2), "nested begin_mutate");
    }

    /// Ends a structural mutation: flips the version back to even.
    fn end_mutate(&self) {
        let v = self.version.fetch_add(1, Ordering::SeqCst);
        debug_assert!(!v.is_multiple_of(2), "end_mutate without begin");
    }

    /// Publishes `page` in the mirror (under the shard mutex). No version
    /// bump: concurrent readers either miss (slot still empty — they go
    /// pessimistic and find the page under the lock) or see the fully
    /// published entry, because the tag is stored last with `Release`.
    /// A full probe window leaves the page unmirrored — correct, merely
    /// pessimistic for that page.
    fn mirror_insert(&self, page: PageId, owner: usize, value: &Arc<T>) {
        let base = self.slot_base(page);
        let mask = self.mirror.len() - 1;
        // Scan the whole window for an existing entry before choosing an
        // empty slot: a page inserted deep in the window (earlier slots
        // were occupied then) must not gain a duplicate in a slot that has
        // since been freed — `mirror_remove` clears only the first match.
        let mut empty = None;
        for i in 0..MIRROR_PROBE {
            let slot = &self.mirror[(base + i) & mask];
            let tag = slot.tag.load(Ordering::Relaxed);
            if tag == Self::tag_of(page) {
                return; // already mirrored
            }
            if tag == TAG_EMPTY && empty.is_none() {
                empty = Some(slot);
            }
        }
        if let Some(slot) = empty {
            let raw = Arc::into_raw(Arc::clone(value)) as *mut T;
            slot.ptr.store(raw, Ordering::Relaxed);
            slot.owner.store(owner, Ordering::Relaxed);
            slot.tag.store(Self::tag_of(page), Ordering::Release);
        }
    }

    /// Unpublishes `page` (under the shard mutex, **between**
    /// [`Shard::begin_mutate`] and [`Shard::end_mutate`]): clears the tag
    /// and either releases the mirror's reference immediately (no pinned
    /// readers) or retires it to the graveyard for a later sweep. Never
    /// blocks on the pin count — a reader may hold a [`PageGuard`] pin on
    /// this very page *while* performing the pessimistic fill that evicts
    /// it, and a drain-wait here would deadlock on the reader's own pin.
    fn mirror_remove(&self, page: PageId) {
        self.sweep_graveyard();
        let base = self.slot_base(page);
        let mask = self.mirror.len() - 1;
        for i in 0..MIRROR_PROBE {
            let idx = (base + i) & mask;
            let slot = &self.mirror[idx];
            if slot.tag.load(Ordering::Relaxed) != Self::tag_of(page) {
                continue;
            }
            slot.tag.store(TAG_EMPTY, Ordering::SeqCst);
            let raw = slot.ptr.swap(std::ptr::null_mut(), Ordering::SeqCst);
            debug_assert!(!raw.is_null());
            // Dekker pairing (see `OptSlot::pins`): this load is ordered
            // after the version store in `begin_mutate`, so a reader whose
            // validation succeeded has its pin visible here, and a reader
            // pinning after this point fails its validation.
            if slot.pins.load(Ordering::SeqCst) == 0 {
                // SAFETY: `raw` came from `Arc::into_raw` in
                // `mirror_insert`; no validated reader holds a pin and the
                // slot no longer references the payload, so this is the
                // single release of the mirror's reference.
                unsafe { drop(Arc::from_raw(raw)) };
            } else {
                lock_clean(&self.graveyard).push(Retired {
                    slot: idx,
                    ptr: raw,
                });
            }
            return;
        }
    }

    /// Frees retired payloads whose slots have drained to zero pins. A pin
    /// observed here may belong to a *newer* incarnation of the slot, which
    /// only delays the free — never a double free (the graveyard mutex
    /// serializes sweeps and each entry is freed as it is removed) and
    /// never a use-after-free (a guard's pin is held continuously from
    /// before retirement until after its last deref, so zero pins proves
    /// no guard can still reach the retired payload).
    fn sweep_graveyard(&self) {
        let mut grave = lock_clean(&self.graveyard);
        grave.retain(|r| {
            if self.mirror[r.slot].pins.load(Ordering::SeqCst) == 0 {
                // SAFETY: the retired entry owns the strong reference the
                // mirror gave up; zero pins means no outstanding guard
                // derefs it.
                unsafe { drop(Arc::from_raw(r.ptr)) };
                false
            } else {
                true
            }
        });
    }
}

impl<T> Drop for Shard<T> {
    fn drop(&mut self) {
        for slot in self.mirror.iter_mut() {
            let raw = *slot.ptr.get_mut();
            if !raw.is_null() {
                // SAFETY: the slot holds the strong reference created by
                // `mirror_insert`; no readers exist during drop.
                unsafe { drop(Arc::from_raw(raw)) };
            }
        }
        let grave = self
            .graveyard
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for r in grave.drain(..) {
            // SAFETY: retired entries own their strong reference; guards
            // borrow the cache, so none can outlive this drop.
            unsafe { drop(Arc::from_raw(r.ptr)) };
        }
    }
}

/// Clears a shard's in-flight marker if a fill unwinds: a source that
/// panics mid-fetch (worker bug, injected fault) must not leave every
/// later requester of the page blocked on the condvar.
struct LoadingGuard<'a, T> {
    shard: &'a Shard<T>,
    page: PageId,
    armed: bool,
}

impl<T> Drop for LoadingGuard<'_, T> {
    fn drop(&mut self) {
        if self.armed {
            let mut state = lock_clean(&self.shard.state);
            state.loading.remove(&self.page);
            drop(state);
            self.shard.loaded.notify_all();
        }
    }
}

/// Per-worker counters, padded out so workers on different cores don't
/// false-share a cache line. Plain relaxed atomics: each field is written
/// by its own worker on the hot path and only read (racily, monotonically)
/// by stats observers, so no mutex is needed.
#[repr(align(64))]
#[derive(Default)]
struct WorkerStats {
    hits_local: AtomicU64,
    hits_l1: AtomicU64,
    hits_remote: AtomicU64,
    hits_in_flight: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    retries: AtomicU64,
    /// Seqlock-path counters (see [`OptStats`]); striped with the rest so
    /// the optimistic hit path touches only this worker's line.
    opt_hits: AtomicU64,
    opt_retries: AtomicU64,
    opt_fallbacks: AtomicU64,
    /// Guard-path counters: borrowing reads served with neither mutex nor
    /// Arc clone, and how their cross-level validation chains resolved.
    guard_hits: AtomicU64,
    coupled: AtomicU64,
    renewed: AtomicU64,
    /// Rolling tick driving the sampled LRU touch on optimistic hits (not
    /// a statistic; lives here for the per-worker cacheline).
    touch_tick: AtomicU64,
}

impl WorkerStats {
    fn snapshot(&self) -> BufferStats {
        BufferStats {
            hits_local: self.hits_local.load(Ordering::Relaxed),
            hits_l1: self.hits_l1.load(Ordering::Relaxed),
            hits_remote: self.hits_remote.load(Ordering::Relaxed),
            hits_in_flight: self.hits_in_flight.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            hits_path: 0,
            retries: self.retries.load(Ordering::Relaxed),
        }
    }

    fn opt_snapshot(&self) -> OptStats {
        OptStats {
            hits: self.opt_hits.load(Ordering::Relaxed),
            retries: self.opt_retries.load(Ordering::Relaxed),
            fallbacks: self.opt_fallbacks.load(Ordering::Relaxed),
            guard_hits: self.guard_hits.load(Ordering::Relaxed),
            coupled: self.coupled.load(Ordering::Relaxed),
            renewed: self.renewed.load(Ordering::Relaxed),
        }
    }
}

/// A borrowing, pin-backed view of a cached page: derefs to `&T` with
/// **no Arc clone and no shard mutex**. Produced by
/// [`SharedPageCache::guard_get`] and
/// [`SharedPageCache::guard_get_coupled`]. Holding one pins the page's
/// mirror slot, which *defers* (never blocks) a concurrent eviction's
/// payload free until the guard drops — see the module docs for the
/// graveyard protocol that makes this safe even when the guard's own
/// thread performs the eviction.
pub struct PageGuard<'c, T> {
    slot: &'c OptSlot<T>,
    raw: *const T,
    shard_idx: usize,
    version: u64,
    page: PageId,
    access: SharedAccess,
}

impl<T> PageGuard<'_, T> {
    /// How the read was satisfied (always a local or remote hit).
    pub fn access(&self) -> SharedAccess {
        self.access
    }

    /// The page this guard reads.
    pub fn page(&self) -> PageId {
        self.page
    }

    /// An owned handle to the page, for callers that must outlive the
    /// guard (e.g. an L1 slot refill). Costs one refcount increment —
    /// exactly what the Arc-path optimistic read pays.
    pub fn to_arc(&self) -> Arc<T> {
        // SAFETY: `raw` came from `Arc::into_raw`; the pin held by this
        // guard keeps the mirror's (or graveyard's) strong reference
        // alive until the guard drops, so the count is ≥ 1 throughout.
        unsafe {
            Arc::increment_strong_count(self.raw);
            Arc::from_raw(self.raw)
        }
    }

    /// The validation token linking this read into a parent→child chain;
    /// pass to [`SharedPageCache::guard_get_coupled`] for the next level
    /// of the descent.
    pub fn coupling(&self) -> OptCoupling {
        OptCoupling {
            link: Some(CoupleLink {
                shard: self.shard_idx,
                version: self.version,
                page: self.page,
            }),
        }
    }
}

impl<T> std::ops::Deref for PageGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: validated at acquisition; the pin defers any free of the
        // payload until this guard drops.
        unsafe { &*self.raw }
    }
}

impl<T> Drop for PageGuard<'_, T> {
    fn drop(&mut self) {
        // SeqCst: the release of the pin must rank against a remover's
        // (or sweeper's) pins load, exactly like the acquisition did.
        self.slot.pins.fetch_sub(1, Ordering::SeqCst);
    }
}

impl<T> std::fmt::Debug for PageGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageGuard")
            .field("page", &self.page)
            .field("access", &self.access)
            .finish()
    }
}

/// One validated `(shard, version, page)` link of a descent chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CoupleLink {
    shard: usize,
    version: u64,
    page: PageId,
}

/// Cross-level validation token for optimistic descents (umolc-style
/// coupled validation). Create one with [`OptCoupling::root`] at the top
/// of a root-to-leaf traversal and thread it through
/// [`SharedPageCache::guard_get_coupled`]: each successful child read
/// revalidates the parent link and advances the token, so the whole path
/// forms one validation chain; any broken link resets the token and sends
/// that page to the pessimistic path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptCoupling {
    link: Option<CoupleLink>,
}

impl OptCoupling {
    /// A chain with no parent yet (the start of a descent).
    pub fn root() -> Self {
        OptCoupling::default()
    }
}

/// The concurrent sharded page cache.
pub struct SharedPageCache<T> {
    shards: Vec<Shard<T>>,
    stats: Vec<WorkerStats>,
    retry: RetryPolicy,
    corrupt_detected: AtomicU64,
    trace: Option<Arc<psj_obs::TraceSink>>,
}

impl<T> SharedPageCache<T> {
    /// Creates a cache holding at most `capacity` pages, split over `shards`
    /// independently locked segments, tracking stats for `workers` workers.
    ///
    /// Every shard gets at least one page, so the effective capacity is
    /// `max(capacity, shards)` when `capacity < shards`.
    ///
    /// The cache starts with [`RetryPolicy::default`] (three attempts, no
    /// backoff) — use [`SharedPageCache::with_retry`] to change it.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `workers` is zero.
    pub fn new(workers: usize, capacity: usize, shards: usize, policy: Policy) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(workers > 0, "need at least one worker");
        let per_shard = capacity.div_ceil(shards).max(1);
        // Mirror at 2× capacity (min 16), power of two: load factor ≤ 0.5
        // keeps linear probes inside MIRROR_PROBE with high probability.
        let mirror_slots = (per_shard * 2).next_power_of_two().max(16);
        SharedPageCache {
            shards: (0..shards)
                .map(|_| Shard {
                    state: Mutex::new(ShardState {
                        buf: PageBuffer::new(policy, per_shard),
                        data: HashMap::with_capacity(per_shard),
                        owner: HashMap::with_capacity(per_shard),
                        loading: HashSet::new(),
                        quarantined: HashMap::new(),
                    }),
                    loaded: Condvar::new(),
                    capacity: per_shard,
                    version: AtomicU64::new(0),
                    mirror: (0..mirror_slots).map(|_| OptSlot::empty()).collect(),
                    graveyard: Mutex::new(Vec::new()),
                })
                .collect(),
            stats: (0..workers).map(|_| WorkerStats::default()).collect(),
            retry: RetryPolicy::default(),
            corrupt_detected: AtomicU64::new(0),
            trace: None,
        }
    }

    /// Replace the retry policy applied to fills (builder style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attach a trace sink (builder style): every fill that reaches the
    /// source emits a `page_read` span, every retried attempt a
    /// `page_retry` instant, and every quarantine a `page_quarantine`
    /// instant, all on the requesting worker's cache thread row. Hits stay
    /// untraced — the slow path is the only place the `Option` is checked,
    /// so a disabled trace costs nothing on the hit path.
    pub fn with_trace(mut self, trace: Arc<psj_obs::TraceSink>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// The retry policy applied to fills.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of workers stats are tracked for.
    pub fn num_workers(&self) -> usize {
        self.stats.len()
    }

    /// Maximum number of resident pages (sum of shard capacities).
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.capacity).sum()
    }

    /// Current number of resident pages.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_clean(&s.state).buf.len())
            .sum()
    }

    /// Whether no page is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of pages currently quarantined as corrupt.
    pub fn quarantined_pages(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_clean(&s.state).quarantined.len())
            .sum()
    }

    /// Whether `page` is quarantined.
    pub fn is_quarantined(&self, page: PageId) -> bool {
        lock_clean(&self.shard_of(page).state)
            .quarantined
            .contains_key(&page)
    }

    /// Total corrupt fills detected over the cache's lifetime (monotone;
    /// counts first detections, not replays to later requesters).
    pub fn corrupt_detected(&self) -> u64 {
        self.corrupt_detected.load(Ordering::Relaxed)
    }

    #[inline]
    fn shard_index(&self, page: PageId) -> usize {
        // Fibonacci hashing spreads the sequential page ids trees produce;
        // plain modulo would put all of a small tree in adjacent shards.
        let h = (page.0 as u64).wrapping_mul(0x9E3779B97F4A7C15);
        (h >> 32) as usize % self.shards.len()
    }

    #[inline]
    fn shard_of(&self, page: PageId) -> &Shard<T> {
        &self.shards[self.shard_index(page)]
    }

    /// Sampled replacement promotion for reads that bypass the mutex:
    /// every [`TOUCH_SAMPLE`]-th optimistic or guard hit per worker
    /// re-touches the page under the shard mutex — but only if the mutex
    /// is immediately available, so the hot path never queues on it.
    fn sampled_touch(&self, worker: usize, shard: &Shard<T>, page: PageId) {
        let tick = self.stats[worker]
            .touch_tick
            .fetch_add(1, Ordering::Relaxed);
        if !tick.is_multiple_of(TOUCH_SAMPLE) {
            return;
        }
        if let Ok(mut state) = shard.state.try_lock() {
            if state.buf.contains(page) {
                state.buf.touch(page);
            }
        }
    }

    /// Books a failed optimistic attempt: the validation retries, plus a
    /// fallback when the attempts were exhausted by contention (rather
    /// than the read being a clean mirror miss).
    fn note_opt_failure(&self, worker: usize, retries: u64) {
        let s = &self.stats[worker];
        if retries > 0 {
            s.opt_retries.fetch_add(retries, Ordering::Relaxed);
        }
        if retries >= OPT_ATTEMPTS as u64 {
            s.opt_fallbacks.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counter updates run outside every shard lock (callers invoke this
    /// after dropping the shard state), so a hit holds the shard mutex only
    /// for the map probe + `Arc` clone and never serializes on stats.
    fn bump(&self, worker: usize, access: SharedAccess, evicted: bool, retries: u64) {
        let s = &self.stats[worker];
        match access {
            SharedAccess::HitLocal => s.hits_local.fetch_add(1, Ordering::Relaxed),
            SharedAccess::HitRemote { .. } => s.hits_remote.fetch_add(1, Ordering::Relaxed),
            SharedAccess::HitInFlight => s.hits_in_flight.fetch_add(1, Ordering::Relaxed),
            SharedAccess::Miss => s.misses.fetch_add(1, Ordering::Relaxed),
        };
        if evicted {
            s.evictions.fetch_add(1, Ordering::Relaxed);
        }
        if retries > 0 {
            s.retries.fetch_add(retries, Ordering::Relaxed);
        }
    }

    fn bump_retries(&self, worker: usize, retries: u64) {
        if retries > 0 {
            self.stats[worker]
                .retries
                .fetch_add(retries, Ordering::Relaxed);
        }
    }

    /// Credits `n` hits absorbed by `worker`'s private L1 front. The front
    /// accumulates locally and flushes through here before any stats read,
    /// keeping [`SharedPageCache::stats`] exact.
    pub fn add_l1_hits(&self, worker: usize, n: u64) {
        if n > 0 {
            self.stats[worker].hits_l1.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current generation of the shard holding `page` — since the seqlock
    /// rework this is the shard's version word. It advances whenever any
    /// page leaves that shard (eviction or quarantine) and is momentarily
    /// *odd* while such a removal is in progress; a value read *before* a
    /// successful [`SharedPageCache::try_get`] therefore certifies, for as
    /// long as it remains current, that the returned page is still
    /// resident. (An odd value can never falsely certify: the removal in
    /// progress advances the word before any reader could observe the odd
    /// value twice.)
    pub fn shard_generation(&self, page: PageId) -> u64 {
        self.shard_of(page).version.load(Ordering::Acquire)
    }

    /// The optimistic read: serve `page` from the shard's mirror without
    /// the mutex. Returns `Ok` on a validated hit; `Err(retries)` when the
    /// caller must go pessimistic, carrying the number of failed
    /// validations (0 = clean miss, `>= OPT_ATTEMPTS` = fallback after
    /// contention).
    fn opt_get(&self, worker: usize, page: PageId) -> Result<(Arc<T>, SharedAccess), u64> {
        let shard = self.shard_of(page);
        let tag = Shard::<T>::tag_of(page);
        let base = shard.slot_base(page);
        let mask = shard.mirror.len() - 1;
        let mut retries = 0u64;
        while retries < OPT_ATTEMPTS as u64 {
            let v1 = shard.version.load(Ordering::SeqCst);
            if !v1.is_multiple_of(2) {
                // A removal is in flight; its version bump would fail the
                // validation anyway.
                retries += 1;
                std::hint::spin_loop();
                continue;
            }
            let mut found = None;
            for i in 0..MIRROR_PROBE {
                let slot = &shard.mirror[(base + i) & mask];
                if slot.tag.load(Ordering::Acquire) == tag {
                    found = Some(slot);
                    break;
                }
            }
            let Some(slot) = found else {
                if shard.version.load(Ordering::SeqCst) == v1 {
                    // Stable version across the whole probe: the page
                    // really is absent from the mirror. Miss, not failure.
                    return Err(retries);
                }
                retries += 1;
                continue;
            };
            // Pin, then re-validate. SeqCst makes `pin ; load version`
            // rank against the remover's `store version ; load pins`: if
            // our validation sees the version unchanged and even, the
            // remover has not started, and it must observe our pin before
            // freeing the payload.
            slot.pins.fetch_add(1, Ordering::SeqCst);
            let raw = slot.ptr.load(Ordering::SeqCst);
            let owner = slot.owner.load(Ordering::Relaxed);
            let tag2 = slot.tag.load(Ordering::SeqCst);
            let valid = shard.version.load(Ordering::SeqCst) == v1 && tag2 == tag && !raw.is_null();
            let value = if valid {
                // SAFETY: `raw` came from `Arc::into_raw`; the validated
                // pin (above) keeps the remover from releasing the slot's
                // strong reference until we drop the pin below, so the
                // pointee is alive for the clone.
                Some(unsafe {
                    Arc::increment_strong_count(raw);
                    Arc::from_raw(raw)
                })
            } else {
                None
            };
            slot.pins.fetch_sub(1, Ordering::SeqCst);
            match value {
                Some(v) => {
                    let access = if owner == worker {
                        SharedAccess::HitLocal
                    } else {
                        SharedAccess::HitRemote { owner }
                    };
                    let s = &self.stats[worker];
                    s.opt_hits.fetch_add(1, Ordering::Relaxed);
                    if retries > 0 {
                        s.opt_retries.fetch_add(retries, Ordering::Relaxed);
                    }
                    self.bump(worker, access, false, 0);
                    self.sampled_touch(worker, shard, page);
                    return Ok((v, access));
                }
                None => {
                    retries += 1;
                    continue;
                }
            }
        }
        Err(retries)
    }

    /// Core of the guard acquisition: [`SharedPageCache::opt_get`]'s
    /// protocol, but the winning read *keeps* its pin instead of cloning
    /// the `Arc` under it — the pin is the guard's lease on the payload.
    /// Returns `Err(retries)` when the caller must go pessimistic.
    fn guard_acquire(&self, worker: usize, page: PageId) -> Result<PageGuard<'_, T>, u64> {
        let shard_idx = self.shard_index(page);
        let shard = &self.shards[shard_idx];
        let tag = Shard::<T>::tag_of(page);
        let base = shard.slot_base(page);
        let mask = shard.mirror.len() - 1;
        let mut retries = 0u64;
        while retries < OPT_ATTEMPTS as u64 {
            let v1 = shard.version.load(Ordering::SeqCst);
            if !v1.is_multiple_of(2) {
                retries += 1;
                std::hint::spin_loop();
                continue;
            }
            let mut found = None;
            for i in 0..MIRROR_PROBE {
                let slot = &shard.mirror[(base + i) & mask];
                if slot.tag.load(Ordering::Acquire) == tag {
                    found = Some(slot);
                    break;
                }
            }
            let Some(slot) = found else {
                if shard.version.load(Ordering::SeqCst) == v1 {
                    return Err(retries);
                }
                retries += 1;
                continue;
            };
            // Pin, then re-validate — the same Dekker pairing as
            // `opt_get`; see the comments there.
            slot.pins.fetch_add(1, Ordering::SeqCst);
            let raw = slot.ptr.load(Ordering::SeqCst);
            let owner = slot.owner.load(Ordering::Relaxed);
            let tag2 = slot.tag.load(Ordering::SeqCst);
            if shard.version.load(Ordering::SeqCst) == v1 && tag2 == tag && !raw.is_null() {
                let access = if owner == worker {
                    SharedAccess::HitLocal
                } else {
                    SharedAccess::HitRemote { owner }
                };
                let s = &self.stats[worker];
                s.guard_hits.fetch_add(1, Ordering::Relaxed);
                if retries > 0 {
                    s.opt_retries.fetch_add(retries, Ordering::Relaxed);
                }
                self.bump(worker, access, false, 0);
                self.sampled_touch(worker, shard, page);
                return Ok(PageGuard {
                    slot,
                    raw,
                    shard_idx,
                    version: v1,
                    page,
                    access,
                });
            }
            slot.pins.fetch_sub(1, Ordering::SeqCst);
            retries += 1;
        }
        Err(retries)
    }

    /// Borrowing optimistic read: a [`PageGuard`] handing out `&T` with
    /// no Arc clone and no shard mutex, when `page` is resident and the
    /// seqlock validates. `None` means the caller must take the
    /// pessimistic path ([`SharedPageCache::try_get`] re-runs the full
    /// ladder; the failure accounting matches the Arc fast path exactly).
    pub fn guard_get(&self, worker: usize, page: PageId) -> Option<PageGuard<'_, T>> {
        match self.guard_acquire(worker, page) {
            Ok(g) => Some(g),
            Err(retries) => {
                self.note_opt_failure(worker, retries);
                None
            }
        }
    }

    /// As [`SharedPageCache::guard_get`], chained into a descent: after
    /// the child validates, the parent link recorded in `chain` is
    /// revalidated. An unchanged parent shard version extends the chain
    /// ([`OptStats::coupled`]); a version advance with the parent still
    /// mirrored repairs it in place ([`OptStats::renewed`]); a vanished
    /// parent breaks it — the child guard is dropped, the chain resets,
    /// and `None` sends the caller to the pessimistic path for this page.
    /// On success `chain` is advanced to the returned page, so a
    /// root-to-leaf descent forms one validation chain.
    pub fn guard_get_coupled(
        &self,
        worker: usize,
        page: PageId,
        chain: &mut OptCoupling,
    ) -> Option<PageGuard<'_, T>> {
        let guard = match self.guard_acquire(worker, page) {
            Ok(g) => g,
            Err(retries) => {
                self.note_opt_failure(worker, retries);
                *chain = OptCoupling::root();
                return None;
            }
        };
        let s = &self.stats[worker];
        if let Some(link) = chain.link {
            if self.shards[link.shard].version.load(Ordering::SeqCst) == link.version {
                s.coupled.fetch_add(1, Ordering::Relaxed);
            } else if self.still_mirrored(link.shard, link.page) {
                s.renewed.fetch_add(1, Ordering::Relaxed);
            } else {
                // The parent left its shard mid-descent. The pages are
                // frozen, but the protocol treats a broken chain as a
                // failed validation: drop the child pin and let the
                // caller re-read pessimistically, restarting the chain.
                s.opt_fallbacks.fetch_add(1, Ordering::Relaxed);
                *chain = OptCoupling::root();
                drop(guard);
                return None;
            }
        }
        *chain = guard.coupling();
        Some(guard)
    }

    /// Whether `page` is still published in `shard`'s mirror with the
    /// shard at rest across the probe — i.e. a broken-version chain link
    /// can be *renewed* (the parent never left) rather than broken.
    fn still_mirrored(&self, shard_idx: usize, page: PageId) -> bool {
        let shard = &self.shards[shard_idx];
        let v = shard.version.load(Ordering::SeqCst);
        if !v.is_multiple_of(2) {
            return false;
        }
        let tag = Shard::<T>::tag_of(page);
        let base = shard.slot_base(page);
        let mask = shard.mirror.len() - 1;
        for i in 0..MIRROR_PROBE {
            let slot = &shard.mirror[(base + i) & mask];
            if slot.tag.load(Ordering::Acquire) == tag {
                return shard.version.load(Ordering::SeqCst) == v;
            }
        }
        false
    }

    /// Looks up `page`, fetching it from `source` on a miss. Returns the
    /// cached value and how the request was satisfied.
    ///
    /// `worker` indexes the per-worker statistics and is recorded as the
    /// page's owner when this call fetches it.
    ///
    /// # Panics
    ///
    /// Panics if the source's fetch fails; use [`SharedPageCache::try_get`]
    /// for fallible sources (e.g. a disk-backed pager).
    pub fn get<S>(&self, worker: usize, page: PageId, source: &S) -> (Arc<T>, SharedAccess)
    where
        S: PageSource<Item = T> + ?Sized,
    {
        self.try_get(worker, page, source)
            .unwrap_or_else(|e| panic!("fetching page {page}: {e}"))
    }

    /// As [`SharedPageCache::get`], propagating a failed fetch to the caller
    /// instead of panicking.
    ///
    /// Retryable source errors are retried in place under the cache's
    /// [`RetryPolicy`] before failing. A final *corrupt* error quarantines
    /// the page — the stored error is replayed to every later requester
    /// without re-fetching. Any other final error caches nothing and clears
    /// the in-flight marker, so concurrent waiters on the same page wake up
    /// and retry the fetch themselves; one degraded request does not poison
    /// the page for others.
    pub fn try_get<S>(
        &self,
        worker: usize,
        page: PageId,
        source: &S,
    ) -> Result<(Arc<T>, SharedAccess), PageError>
    where
        S: PageSource<Item = T> + ?Sized,
    {
        // Fast path: version-validated read against the shard's mirror, no
        // mutex. Falls through on a clean miss (page not mirrored) or
        // after OPT_ATTEMPTS failed validations.
        match self.opt_get(worker, page) {
            Ok(hit) => return Ok(hit),
            Err(retries) => self.note_opt_failure(worker, retries),
        }
        self.pessimistic_get(worker, page, source)
    }

    /// As [`SharedPageCache::try_get`] but skipping the optimistic fast
    /// path entirely: every read takes the shard mutex (and pays its LRU
    /// promotion). This is the contended-read benchmark's locked baseline;
    /// regular callers should prefer [`SharedPageCache::try_get`].
    pub fn try_get_locked<S>(
        &self,
        worker: usize,
        page: PageId,
        source: &S,
    ) -> Result<(Arc<T>, SharedAccess), PageError>
    where
        S: PageSource<Item = T> + ?Sized,
    {
        self.pessimistic_get(worker, page, source)
    }

    /// The pessimistic path: shard mutex, quarantine replay, single-flight
    /// fill, eviction. [`SharedPageCache::try_get`] lands here after the
    /// optimistic fast path declines; [`SharedPageCache::try_get_locked`]
    /// enters directly.
    fn pessimistic_get<S>(
        &self,
        worker: usize,
        page: PageId,
        source: &S,
    ) -> Result<(Arc<T>, SharedAccess), PageError>
    where
        S: PageSource<Item = T> + ?Sized,
    {
        let shard = self.shard_of(page);
        let mut state = lock_clean(&shard.state);
        let mut waited = false;
        loop {
            if let Some(err) = state.quarantined.get(&page) {
                let err = err.clone();
                drop(state);
                return Err(err);
            }
            if let Some(value) = state.data.get(&page) {
                let value = Arc::clone(value);
                state.buf.touch(page);
                let access = if waited {
                    SharedAccess::HitInFlight
                } else {
                    match state.owner.get(&page) {
                        Some(&o) if o == worker => SharedAccess::HitLocal,
                        Some(&o) => SharedAccess::HitRemote { owner: o },
                        // Unreachable in practice (resident ⇒ owned), but a
                        // local hit is the safe default.
                        None => SharedAccess::HitLocal,
                    }
                };
                // A resident page can be missing from the mirror (probe
                // window was full at fill time); repair while we hold the
                // lock so later reads go optimistic.
                let owner = state.owner.get(&page).copied().unwrap_or(worker);
                shard.mirror_insert(page, owner, &value);
                drop(state);
                self.bump(worker, access, false, 0);
                return Ok((value, access));
            }
            if state.loading.contains(&page) {
                // Someone else is fetching this page: wait for their load
                // rather than issuing a second fetch (paper §3.1). If that
                // load *fails*, the marker is cleared and the wakeup sends
                // us around the loop to retry the fetch ourselves (or to
                // pick up the quarantine entry if it was corrupt).
                waited = true;
                state = wait_clean(&shard.loaded, state);
                continue;
            }
            // We fetch. Mark in flight and release the shard lock so other
            // pages of this shard stay accessible during the fetch. The
            // guard clears the marker if the source panics mid-fetch —
            // without it, every later requester of this page would block
            // on the condvar forever.
            state.loading.insert(page);
            drop(state);
            let mut guard = LoadingGuard {
                shard,
                page,
                armed: true,
            };
            let fill_start = self.trace.as_ref().map(|t| t.now_ns());
            let (fetched, retries) = match &self.trace {
                None => self.retry.run(page.0 as u64, |_| source.fetch_page(page)),
                Some(t) => self.retry.run_observed(
                    page.0 as u64,
                    |_| source.fetch_page(page),
                    |attempt, _| {
                        t.instant(
                            psj_obs::trace::cache_tid(worker),
                            "page_retry",
                            "storage",
                            &[("page", page.0 as u64), ("attempt", attempt as u64)],
                        );
                    },
                ),
            };
            if let (Some(t), Some(start)) = (&self.trace, fill_start) {
                t.span(
                    psj_obs::trace::cache_tid(worker),
                    "page_read",
                    "storage",
                    start,
                    &[
                        ("page", page.0 as u64),
                        ("worker", worker as u64),
                        ("retries", retries),
                        ("ok", fetched.is_ok() as u64),
                    ],
                );
            }
            guard.armed = false;
            let mut state = lock_clean(&shard.state);
            state.loading.remove(&page);
            let value = match fetched {
                Ok(v) => Arc::new(v),
                Err(e) => {
                    if e.is_corrupt() {
                        // Unrecoverable: quarantine so later requesters get
                        // the typed error without hitting the device again.
                        state.quarantined.insert(page, e.clone());
                        // Advance the version so generation-checked L1
                        // slots and optimistic readers conservatively
                        // re-validate: no front may keep serving a page
                        // the shard now refuses. (The page was loading,
                        // not resident, so there is no mirror entry to
                        // clear.)
                        shard.begin_mutate();
                        shard.end_mutate();
                        self.corrupt_detected.fetch_add(1, Ordering::Relaxed);
                        if let Some(t) = &self.trace {
                            t.instant(
                                psj_obs::trace::cache_tid(worker),
                                "page_quarantine",
                                "storage",
                                &[("page", page.0 as u64)],
                            );
                        }
                    }
                    drop(state);
                    shard.loaded.notify_all();
                    self.bump_retries(worker, retries);
                    return Err(e);
                }
            };
            let mut evicted = false;
            if let Some(victim) = state.buf.insert(page) {
                state.data.remove(&victim);
                state.owner.remove(&victim);
                // The victim leaves the shard: flip the version odd, drain
                // pinned optimistic readers of the victim's slot, release
                // its mirror reference, then flip back even. Generation-
                // checked L1 slots and in-flight optimistic reads both
                // observe the advance and re-validate.
                shard.begin_mutate();
                shard.mirror_remove(victim);
                shard.end_mutate();
                evicted = true;
            }
            state.data.insert(page, Arc::clone(&value));
            state.owner.insert(page, worker);
            shard.mirror_insert(page, worker, &value);
            drop(state);
            shard.loaded.notify_all();
            self.bump(worker, SharedAccess::Miss, evicted, retries);
            return Ok((value, SharedAccess::Miss));
        }
    }

    /// Read-only residency test (no promotion, no stats).
    pub fn contains(&self, page: PageId) -> bool {
        lock_clean(&self.shard_of(page).state).buf.contains(page)
    }

    /// One worker's statistics.
    pub fn stats(&self, worker: usize) -> BufferStats {
        self.stats[worker].snapshot()
    }

    /// Per-worker statistics, indexed by worker.
    pub fn per_worker_stats(&self) -> Vec<BufferStats> {
        self.stats.iter().map(WorkerStats::snapshot).collect()
    }

    /// Aggregated statistics over all workers.
    pub fn total_stats(&self) -> BufferStats {
        self.per_worker_stats()
            .iter()
            .fold(BufferStats::default(), |acc, s| acc.merged(s))
    }

    /// One worker's optimistic-path counters.
    pub fn opt_stats_for(&self, worker: usize) -> OptStats {
        self.stats[worker].opt_snapshot()
    }

    /// Aggregated optimistic-path counters over all workers.
    pub fn opt_stats(&self) -> OptStats {
        self.stats
            .iter()
            .map(WorkerStats::opt_snapshot)
            .fold(OptStats::default(), |acc, s| acc.merged(&s))
    }

    /// A point-in-time view of the cache: aggregate counters plus residency.
    ///
    /// Counters are monotone, so the delta between two snapshots
    /// ([`CacheSnapshot::since`]) isolates the activity in between — the
    /// serving layer takes one snapshot at startup and reports deltas in its
    /// stats endpoint without ever resetting the live counters.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            stats: self.total_stats(),
            opt: self.opt_stats(),
            resident_pages: self.len(),
            capacity_pages: self.capacity(),
            quarantined_pages: self.quarantined_pages(),
            corrupt_detected: self.corrupt_detected(),
        }
    }

    /// Structural invariant check for tests; call only while no access is
    /// concurrently in flight.
    ///
    /// Verifies, per shard: residency within capacity, the value and owner
    /// maps exactly mirror the residency buffer, no load marked in flight,
    /// and no quarantined page resident. Globally: every worker's counters
    /// are internally consistent (`requests() == hits + misses` holds by
    /// construction of [`BufferStats::requests`]).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, shard) in self.shards.iter().enumerate() {
            let state = lock_clean(&shard.state);
            if state.buf.len() > shard.capacity {
                return Err(format!(
                    "shard {i}: {} resident pages exceed capacity {}",
                    state.buf.len(),
                    shard.capacity
                ));
            }
            if state.data.len() != state.buf.len() || state.owner.len() != state.buf.len() {
                return Err(format!(
                    "shard {i}: maps out of sync (buf {}, data {}, owner {})",
                    state.buf.len(),
                    state.data.len(),
                    state.owner.len()
                ));
            }
            for page in state.data.keys() {
                if !state.buf.contains(*page) {
                    return Err(format!("shard {i}: cached page {page} not resident"));
                }
                if !state.owner.contains_key(page) {
                    return Err(format!("shard {i}: cached page {page} has no owner"));
                }
            }
            if !state.loading.is_empty() {
                return Err(format!(
                    "shard {i}: {} loads still marked in flight at rest",
                    state.loading.len()
                ));
            }
            for page in state.quarantined.keys() {
                if state.buf.contains(*page) {
                    return Err(format!("shard {i}: quarantined page {page} is resident"));
                }
            }
            for owner in state.owner.values() {
                if *owner >= self.stats.len() {
                    return Err(format!("shard {i}: owner {owner} out of range"));
                }
            }
            // Seqlock/mirror invariants at rest.
            let version = shard.version.load(Ordering::SeqCst);
            if !version.is_multiple_of(2) {
                return Err(format!("shard {i}: version {version} odd at rest"));
            }
            let mut mirrored = std::collections::HashSet::new();
            for (j, slot) in shard.mirror.iter().enumerate() {
                let pins = slot.pins.load(Ordering::SeqCst);
                if pins != 0 {
                    return Err(format!("shard {i} slot {j}: {pins} pins at rest"));
                }
                let tag = slot.tag.load(Ordering::SeqCst);
                let raw = slot.ptr.load(Ordering::SeqCst);
                if tag == TAG_EMPTY {
                    if !raw.is_null() {
                        return Err(format!("shard {i} slot {j}: empty slot holds a payload"));
                    }
                    continue;
                }
                let page = PageId((tag - 1) as u32);
                if !mirrored.insert(page) {
                    return Err(format!("shard {i}: page {page} mirrored twice"));
                }
                match state.data.get(&page) {
                    None => {
                        return Err(format!("shard {i}: mirrored page {page} not resident"));
                    }
                    Some(value) => {
                        if !std::ptr::eq(Arc::as_ptr(value), raw) {
                            return Err(format!(
                                "shard {i}: mirror payload for {page} diverges from the map"
                            ));
                        }
                    }
                }
                let owner = slot.owner.load(Ordering::SeqCst);
                if state.owner.get(&page) != Some(&owner) {
                    return Err(format!("shard {i}: mirror owner for {page} diverges"));
                }
            }
            // Every resident page should normally be mirrored; a full
            // probe window can leave gaps, but never extras.
            if mirrored.len() > state.data.len() {
                return Err(format!(
                    "shard {i}: {} mirrored pages exceed {} resident",
                    mirrored.len(),
                    state.data.len()
                ));
            }
            // At rest every pin has been dropped (checked above), so a
            // sweep must clear the graveyard completely.
            shard.sweep_graveyard();
            let retired = lock_clean(&shard.graveyard).len();
            if retired != 0 {
                return Err(format!(
                    "shard {i}: {retired} retired payloads still pinned at rest"
                ));
            }
        }
        Ok(())
    }
}

impl<T> std::fmt::Debug for SharedPageCache<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedPageCache")
            .field("shards", &self.shards.len())
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("quarantined", &self.quarantined_pages())
            .finish()
    }
}

/// A point-in-time view of a [`SharedPageCache`], from
/// [`SharedPageCache::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Aggregate counters over all workers at snapshot time.
    pub stats: BufferStats,
    /// Aggregate optimistic-read-path counters at snapshot time.
    pub opt: OptStats,
    /// Pages resident at snapshot time.
    pub resident_pages: usize,
    /// Maximum resident pages (constant over the cache's life).
    pub capacity_pages: usize,
    /// Pages quarantined as corrupt at snapshot time.
    pub quarantined_pages: usize,
    /// Corrupt fills detected so far (monotone).
    pub corrupt_detected: u64,
}

impl CacheSnapshot {
    /// Counter activity between `earlier` and this snapshot (both must be
    /// of the same cache, this one taken later).
    pub fn since(&self, earlier: &CacheSnapshot) -> BufferStats {
        self.stats.since(&earlier.stats)
    }
}

impl PageSource for psj_store::FilePager {
    type Item = Page;

    fn fetch_page(&self, page: PageId) -> Result<Page, PageError> {
        self.read_page(page)
    }

    fn page_count(&self) -> usize {
        self.num_pages()
    }
}

impl PageSource for psj_store::FaultPager {
    type Item = Page;

    fn fetch_page(&self, page: PageId) -> Result<Page, PageError> {
        self.read_page(page)
    }

    fn page_count(&self) -> usize {
        self.num_pages()
    }
}

/// A fault-injecting decorator over any [`PageSource`].
///
/// For *decoded* sources (nodes, not raw bytes) there are no record bytes
/// to flip, so permanent flip/torn faults from the [`FaultPlan`] are
/// synthesized directly as [`PageError::Corrupt`] (see
/// [`FaultPlan::before_fetch`]); transient faults and latency behave
/// exactly as in the byte-level [`psj_store::FaultPager`].
#[derive(Debug)]
pub struct FaultSource<S> {
    inner: S,
    plan: Arc<FaultPlan>,
}

impl<S: PageSource> FaultSource<S> {
    /// Wrap `inner` with the fault plan.
    pub fn new(inner: S, plan: Arc<FaultPlan>) -> Self {
        FaultSource { inner, plan }
    }

    /// The fault plan driving this source.
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: PageSource> PageSource for FaultSource<S> {
    type Item = S::Item;

    fn fetch_page(&self, page: PageId) -> Result<S::Item, PageError> {
        self.plan.before_fetch(page)?;
        self.inner.fetch_page(page)
    }

    fn page_count(&self) -> usize {
        self.inner.page_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A source that counts fetches and returns the page number.
    struct Counting {
        fetches: AtomicU64,
        pages: usize,
    }

    impl Counting {
        fn new(pages: usize) -> Self {
            Counting {
                fetches: AtomicU64::new(0),
                pages,
            }
        }
    }

    impl PageSource for Counting {
        type Item = u32;

        fn fetch_page(&self, page: PageId) -> Result<u32, PageError> {
            self.fetches.fetch_add(1, Ordering::Relaxed);
            Ok(page.0)
        }

        fn page_count(&self) -> usize {
            self.pages
        }
    }

    /// A source that fails the first `failures` fetches with a transient
    /// (retryable) error.
    struct Flaky {
        failures: AtomicU64,
    }

    impl PageSource for Flaky {
        type Item = u32;

        fn fetch_page(&self, page: PageId) -> Result<u32, PageError> {
            if self
                .failures
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |f| f.checked_sub(1))
                .is_ok()
            {
                return Err(PageError::io(
                    page,
                    io::ErrorKind::Other,
                    "simulated bad read",
                ));
            }
            Ok(page.0)
        }

        fn page_count(&self) -> usize {
            100
        }
    }

    /// A source that always reports its pages corrupt.
    struct Rotten;

    impl PageSource for Rotten {
        type Item = u32;

        fn fetch_page(&self, page: PageId) -> Result<u32, PageError> {
            Err(PageError::Corrupt {
                page,
                context: "rotten source".into(),
            })
        }

        fn page_count(&self) -> usize {
            100
        }
    }

    fn p(n: u32) -> PageId {
        PageId(n)
    }

    #[test]
    fn miss_then_local_hit() {
        let cache: SharedPageCache<u32> = SharedPageCache::new(2, 8, 2, Policy::Lru);
        let src = Counting::new(100);
        let (v, a) = cache.get(0, p(5), &src);
        assert_eq!((*v, a), (5, SharedAccess::Miss));
        let (v, a) = cache.get(0, p(5), &src);
        assert_eq!((*v, a), (5, SharedAccess::HitLocal));
        assert_eq!(src.fetches.load(Ordering::Relaxed), 1);
        cache.check_invariants().unwrap();
    }

    #[test]
    fn traced_fills_emit_read_retry_and_quarantine_events() {
        let sink = psj_obs::TraceSink::new(1 << 12);
        let cache: SharedPageCache<u32> =
            SharedPageCache::new(2, 8, 2, Policy::Lru).with_trace(Arc::clone(&sink));

        // A clean miss: one page_read span, no retry instants.
        let src = Counting::new(100);
        cache.get(0, p(1), &src);
        // A hit: no new events (the fast path never sees the sink).
        cache.get(0, p(1), &src);
        assert_eq!(sink.event_count(), 1);

        // Two transient failures then success: two page_retry instants
        // plus the page_read span.
        let flaky = Flaky {
            failures: AtomicU64::new(2),
        };
        cache.try_get(1, p(2), &flaky).unwrap();
        assert_eq!(sink.event_count(), 4);

        // Corruption: page_read span + page_quarantine instant.
        assert!(cache.try_get(0, p(3), &Rotten).is_err());
        assert_eq!(sink.event_count(), 6);

        let mut out = Vec::new();
        sink.write_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let summary = psj_obs::validate_jsonl(&text).unwrap();
        assert_eq!(summary.spans, 3, "{text}");
        assert_eq!(summary.instants, 3, "{text}");
        assert!(text.contains("page_quarantine"));
        assert!(text.contains("page_retry"));
    }

    #[test]
    fn hit_by_other_worker_is_remote() {
        let cache: SharedPageCache<u32> = SharedPageCache::new(3, 8, 2, Policy::Lru);
        let src = Counting::new(100);
        cache.get(2, p(7), &src);
        let (_, a) = cache.get(0, p(7), &src);
        assert_eq!(a, SharedAccess::HitRemote { owner: 2 });
        let total = cache.total_stats();
        assert_eq!(total.misses, 1);
        assert_eq!(total.hits_remote, 1);
        assert_eq!(cache.stats(0).hits_remote, 1);
        assert_eq!(cache.stats(2).misses, 1);
    }

    #[test]
    fn eviction_keeps_capacity_and_drops_value() {
        let cache: SharedPageCache<u32> = SharedPageCache::new(1, 4, 1, Policy::Lru);
        let src = Counting::new(100);
        for n in 0..10 {
            cache.get(0, p(n), &src);
            assert!(cache.len() <= cache.capacity());
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.total_stats().evictions, 6);
        // Re-reading an evicted page re-fetches.
        assert!(!cache.contains(p(0)));
        let (_, a) = cache.get(0, p(0), &src);
        assert_eq!(a, SharedAccess::Miss);
        cache.check_invariants().unwrap();
    }

    #[test]
    fn pinned_value_survives_eviction() {
        let cache: SharedPageCache<u32> = SharedPageCache::new(1, 1, 1, Policy::Lru);
        let src = Counting::new(100);
        let (pinned, _) = cache.get(0, p(1), &src);
        for n in 2..6 {
            cache.get(0, p(n), &src); // evicts p1 and successors
        }
        assert!(!cache.contains(p(1)));
        assert_eq!(*pinned, 1, "Arc keeps the evicted value alive");
    }

    #[test]
    fn capacity_rounds_up_per_shard() {
        let cache: SharedPageCache<u32> = SharedPageCache::new(1, 10, 4, Policy::Lru);
        // 10 / 4 rounds to 3 per shard: effective capacity 12.
        assert_eq!(cache.capacity(), 12);
        let tiny: SharedPageCache<u32> = SharedPageCache::new(1, 0, 3, Policy::Lru);
        assert_eq!(tiny.capacity(), 3, "every shard holds at least one page");
    }

    #[test]
    fn fetch_count_equals_misses() {
        let cache: SharedPageCache<u32> = SharedPageCache::new(4, 64, 4, Policy::Lru);
        let src = Counting::new(40);
        for round in 0..3 {
            for n in 0..40 {
                let (v, _) = cache.get((n as usize + round) % 4, p(n), &src);
                assert_eq!(*v, n);
            }
        }
        let total = cache.total_stats();
        assert_eq!(total.misses, 40, "big cache: one miss per distinct page");
        assert_eq!(src.fetches.load(Ordering::Relaxed), total.misses);
        assert_eq!(total.requests(), 120);
        cache.check_invariants().unwrap();
    }

    #[test]
    fn concurrent_single_fetch_per_page() {
        let cache: SharedPageCache<u32> = SharedPageCache::new(8, 128, 4, Policy::Lru);
        let src = Counting::new(64);
        std::thread::scope(|scope| {
            for w in 0..8 {
                let cache = &cache;
                let src = &src;
                scope.spawn(move || {
                    for n in 0..64u32 {
                        let (v, _) = cache.get(w, p(n), src);
                        assert_eq!(*v, n);
                    }
                });
            }
        });
        // Big enough cache: despite 8 threads racing on every page, each
        // page was fetched exactly once.
        assert_eq!(src.fetches.load(Ordering::Relaxed), 64);
        let total = cache.total_stats();
        assert_eq!(total.misses, 64);
        assert_eq!(total.requests(), 8 * 64);
        cache.check_invariants().unwrap();
    }

    #[test]
    fn policies_dispatch() {
        for policy in [Policy::Lru, Policy::Fifo, Policy::Clock] {
            let cache: SharedPageCache<u32> = SharedPageCache::new(1, 3, 1, policy);
            let src = Counting::new(10);
            for n in 0..5 {
                cache.get(0, p(n), &src);
            }
            assert_eq!(cache.len(), 3, "{policy:?}");
            assert!(cache.contains(p(4)), "{policy:?} keeps newest");
            cache.check_invariants().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _: SharedPageCache<u32> = SharedPageCache::new(1, 4, 0, Policy::Lru);
    }

    #[test]
    fn failed_fetch_degrades_one_request_only() {
        // RetryPolicy::none so the single injected failure is not absorbed.
        let cache: SharedPageCache<u32> =
            SharedPageCache::new(1, 8, 2, Policy::Lru).with_retry(RetryPolicy::none());
        let src = Flaky {
            failures: AtomicU64::new(1),
        };
        let err = cache.try_get(0, p(3), &src).unwrap_err();
        assert!(matches!(err, PageError::Io { .. }));
        cache.check_invariants().unwrap();
        assert!(!cache.contains(p(3)), "failed fetch caches nothing");
        // The very next request retries the source and succeeds.
        let (v, a) = cache.try_get(0, p(3), &src).unwrap();
        assert_eq!((*v, a), (3, SharedAccess::Miss));
        cache.check_invariants().unwrap();
    }

    #[test]
    fn transient_errors_absorbed_by_retry_policy() {
        // Default policy: 3 attempts. Two failures are retried in place and
        // the request still succeeds, with the retries counted.
        let cache: SharedPageCache<u32> = SharedPageCache::new(1, 8, 2, Policy::Lru);
        let src = Flaky {
            failures: AtomicU64::new(2),
        };
        let (v, a) = cache.try_get(0, p(3), &src).unwrap();
        assert_eq!((*v, a), (3, SharedAccess::Miss));
        assert_eq!(cache.total_stats().retries, 2);
        assert_eq!(cache.total_stats().misses, 1);
        cache.check_invariants().unwrap();
    }

    #[test]
    fn retry_budget_exhaustion_fails_and_counts() {
        let cache: SharedPageCache<u32> = SharedPageCache::new(1, 8, 2, Policy::Lru);
        let src = Flaky {
            failures: AtomicU64::new(10),
        };
        let err = cache.try_get(0, p(3), &src).unwrap_err();
        assert!(matches!(err, PageError::Io { .. }));
        // 3 attempts = 2 retries, all counted even though the fill failed.
        assert_eq!(cache.total_stats().retries, 2);
        assert!(!cache.contains(p(3)));
        cache.check_invariants().unwrap();
    }

    #[test]
    fn corrupt_fill_quarantines_and_replays() {
        let cache: SharedPageCache<u32> = SharedPageCache::new(2, 8, 2, Policy::Lru);
        let src = Rotten;
        let err = cache.try_get(0, p(9), &src).unwrap_err();
        assert!(err.is_corrupt());
        assert!(cache.is_quarantined(p(9)));
        assert_eq!(cache.quarantined_pages(), 1);
        assert_eq!(cache.corrupt_detected(), 1);
        // A later request (different worker) replays the stored error
        // without touching the source again.
        let counting_gate = Counting::new(100); // healthy source
        let replay = cache.try_get(1, p(9), &counting_gate).unwrap_err();
        assert!(replay.is_corrupt());
        assert_eq!(
            counting_gate.fetches.load(Ordering::Relaxed),
            0,
            "quarantined page never re-fetched"
        );
        assert_eq!(cache.corrupt_detected(), 1, "replays are not re-detections");
        // Healthy pages are unaffected.
        let (v, _) = cache.try_get(0, p(10), &counting_gate).unwrap();
        assert_eq!(*v, 10);
        cache.check_invariants().unwrap();
    }

    #[test]
    fn concurrent_waiters_survive_a_failed_fetch() {
        let cache: SharedPageCache<u32> =
            SharedPageCache::new(8, 64, 2, Policy::Lru).with_retry(RetryPolicy::none());
        let src = Flaky {
            failures: AtomicU64::new(3),
        };
        let ok = AtomicU64::new(0);
        let failed = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for w in 0..8 {
                let cache = &cache;
                let src = &src;
                let ok = &ok;
                let failed = &failed;
                scope.spawn(move || {
                    for n in 0..16u32 {
                        match cache.try_get(w, p(n), src) {
                            Ok((v, _)) => {
                                assert_eq!(*v, n);
                                ok.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(
            failed.load(Ordering::Relaxed),
            3,
            "each failure hits one request"
        );
        assert_eq!(ok.load(Ordering::Relaxed), 8 * 16 - 3);
        cache.check_invariants().unwrap();
    }

    #[test]
    fn concurrent_waiters_on_a_corrupt_page_all_get_the_typed_error() {
        let cache: SharedPageCache<u32> = SharedPageCache::new(8, 64, 2, Policy::Lru);
        let src = Rotten;
        let corrupt = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for w in 0..8 {
                let cache = &cache;
                let src = &src;
                let corrupt = &corrupt;
                scope.spawn(move || match cache.try_get(w, p(5), src) {
                    Err(e) if e.is_corrupt() => {
                        corrupt.fetch_add(1, Ordering::Relaxed);
                    }
                    other => panic!("expected corrupt error, got {other:?}"),
                });
            }
        });
        assert_eq!(corrupt.load(Ordering::Relaxed), 8);
        assert_eq!(cache.corrupt_detected(), 1, "one detection, many replays");
        cache.check_invariants().unwrap();
    }

    #[test]
    fn fault_source_injects_per_plan() {
        let plan = Arc::new(FaultPlan::new(21).with_transient(1.0, 1));
        let src = FaultSource::new(Counting::new(100), plan.clone());
        // Default retry policy (3 attempts) absorbs the burst of 1.
        let cache: SharedPageCache<u32> = SharedPageCache::new(1, 32, 2, Policy::Lru);
        for n in 0..20 {
            let (v, _) = cache.try_get(0, p(n), &src).unwrap();
            assert_eq!(*v, n);
        }
        assert_eq!(plan.transient_injected(), 20);
        assert_eq!(cache.total_stats().retries, plan.transient_injected());
        cache.check_invariants().unwrap();
    }

    #[test]
    fn fault_source_corruption_quarantines() {
        let plan = Arc::new(FaultPlan::new(22).with_flip(0.5));
        let src = FaultSource::new(Counting::new(100), plan.clone());
        let cache: SharedPageCache<u32> = SharedPageCache::new(1, 64, 2, Policy::Lru);
        let mut corrupt = 0;
        for n in 0..40 {
            match cache.try_get(0, p(n), &src) {
                Ok((v, _)) => assert_eq!(*v, n),
                Err(e) => {
                    assert!(e.is_corrupt());
                    corrupt += 1;
                }
            }
        }
        assert!(corrupt > 0, "plan with flip=0.5 should poison some pages");
        assert_eq!(cache.quarantined_pages(), corrupt);
        assert_eq!(cache.corrupt_detected(), corrupt as u64);
        cache.check_invariants().unwrap();
    }

    #[test]
    fn snapshot_delta_isolates_activity() {
        let cache: SharedPageCache<u32> = SharedPageCache::new(2, 16, 2, Policy::Lru);
        let src = Counting::new(100);
        for n in 0..8 {
            cache.get(0, p(n), &src);
        }
        let before = cache.snapshot();
        assert_eq!(before.stats.misses, 8);
        assert_eq!(before.resident_pages, 8);
        for n in 0..8 {
            cache.get(1, p(n), &src); // all remote hits
        }
        let after = cache.snapshot();
        let delta = after.since(&before);
        assert_eq!(delta.misses, 0);
        assert_eq!(delta.hits_remote, 8);
        assert_eq!(delta.requests(), 8);
        assert_eq!(after.capacity_pages, cache.capacity());
        assert_eq!(after.quarantined_pages, 0);
    }
}
