//! Buffer management for parallel spatial join processing (paper §3.2).
//!
//! Three buffer structures from the paper:
//!
//! * [`Lru`] — an O(1) least-recently-used page buffer, implemented with a
//!   hash table over an intrusive doubly-linked list as described in Gray &
//!   Reuter, *Transaction Processing* (the paper's [GR 93] reference).
//! * [`LocalBuffers`] — one private LRU buffer per processor
//!   (shared-nothing-style). A page may be buffered by several processors at
//!   once; processors do not see each other's buffers, so the same page can
//!   be read from disk repeatedly.
//! * [`GlobalBuffer`] — a single logical buffer realized as the union of the
//!   local buffers under shared virtual memory. A page resides in **at most
//!   one** processor's partition; a hit in another processor's partition is
//!   served over the interconnect (~10× slower than local memory, Table 2).
//! * [`PathBuffer`] — the per-tree buffer holding the nodes of the most
//!   recently accessed path. It belongs to the R\*-tree itself and lives in
//!   the processor's local memory, so path hits bypass the page buffer and
//!   the network entirely.
//! * [`SharedPageCache`] — the *concurrent* counterpart used by the native
//!   executor: a lock-sharded bounded cache over a [`PageSource`], serving
//!   real OS threads with the same local/remote/in-flight accounting the
//!   simulated buffers report.

#![warn(missing_docs)]

pub mod global;
pub mod l1;
pub mod local;
pub mod lru;
pub mod path;
pub mod policy;
pub mod shared;
pub mod stats;

pub use global::{GlobalAccess, GlobalBuffer};
pub use l1::{L1Front, L1Read};
pub use local::LocalBuffers;
pub use lru::Lru;
pub use path::PathBuffer;
pub use policy::{Clock, Fifo, PageBuffer, Policy};
pub use shared::{
    CacheSnapshot, FaultSource, OptCoupling, PageGuard, PageSource, SharedAccess, SharedPageCache,
};
pub use stats::{BufferStats, OptStats};
