//! The R\*-tree path buffer (paper §2.2).
//!
//! "The R\*-tree makes use of a so-called *path buffer* accommodating all
//! nodes of the path which was accessed last." The path buffer belongs to the
//! tree (one per tree per processor), lives in the processor's local memory,
//! and is consulted *before* the page buffer: a path hit costs neither a
//! buffer lookup nor network traffic — which is exactly why the paper notes
//! that path buffers reduce the communication caused by a global buffer.

use psj_store::PageId;

/// Last-accessed path of one R\*-tree, indexed by level (0 = leaf).
#[derive(Debug, Clone)]
pub struct PathBuffer {
    levels: Vec<Option<PageId>>,
}

impl PathBuffer {
    /// Creates a path buffer for a tree of the given height (number of
    /// levels, root included).
    pub fn new(height: usize) -> Self {
        PathBuffer {
            levels: vec![None; height],
        }
    }

    /// Tree height this buffer was sized for.
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Records an access of `page` at `level`, returning `true` when it was
    /// already the buffered node of that level (a path hit).
    pub fn access(&mut self, level: usize, page: PageId) -> bool {
        match self.levels.get_mut(level) {
            Some(slot) => {
                if *slot == Some(page) {
                    true
                } else {
                    *slot = Some(page);
                    false
                }
            }
            None => false,
        }
    }

    /// Whether `page` is the buffered node of `level` (no update).
    pub fn contains(&self, level: usize, page: PageId) -> bool {
        self.levels.get(level).is_some_and(|s| *s == Some(page))
    }

    /// Forgets everything (e.g. when a processor switches trees).
    pub fn clear(&mut self) {
        self.levels.fill(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u32) -> PageId {
        PageId(n)
    }

    #[test]
    fn first_access_is_miss_then_hit() {
        let mut pb = PathBuffer::new(3);
        assert!(!pb.access(2, p(0)));
        assert!(pb.access(2, p(0)));
    }

    #[test]
    fn levels_are_independent() {
        let mut pb = PathBuffer::new(3);
        pb.access(2, p(0));
        pb.access(1, p(5));
        pb.access(0, p(9));
        assert!(pb.contains(2, p(0)));
        assert!(pb.contains(1, p(5)));
        assert!(pb.contains(0, p(9)));
        // Replacing level 1 leaves the others alone.
        assert!(!pb.access(1, p(6)));
        assert!(pb.contains(2, p(0)));
        assert!(!pb.contains(1, p(5)));
    }

    #[test]
    fn out_of_range_level_is_never_hit() {
        let mut pb = PathBuffer::new(2);
        assert!(!pb.access(5, p(1)));
        assert!(!pb.access(5, p(1)), "out-of-range accesses are not cached");
    }

    #[test]
    fn clear_resets() {
        let mut pb = PathBuffer::new(2);
        pb.access(0, p(1));
        pb.clear();
        assert!(!pb.contains(0, p(1)));
    }
}
