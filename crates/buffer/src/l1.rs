//! A per-worker L1 front over the [`SharedPageCache`].
//!
//! The in-memory echo of the paper's local-buffer design (§3.2): each worker
//! owns a small direct-mapped table of `(page, shard generation, Arc)` slots
//! consulted *before* the shared cache. A slot hit returns the pinned value
//! without touching the shard mutex or any stat atomic — the repeat hits a
//! join's depth-first descent produces (the same parent pages over and over)
//! collapse to an array probe and a generation compare.
//!
//! ## Coherence
//!
//! A slot is filled with the shard's generation as read **before** the
//! underlying [`SharedPageCache::try_get`]. The shared cache bumps a shard's
//! generation whenever a page leaves it (eviction or quarantine), so:
//!
//! * slot generation == current generation ⟹ no page has left the shard
//!   since the fill ⟹ the slot's page is still resident and still clean —
//!   serving it from the front is observably identical to a shard probe,
//!   minus the LRU recency touch (see below);
//! * any eviction or quarantine in the shard invalidates every front slot
//!   for that shard (conservative: generations are per shard, not per page),
//!   after which the front falls through to the shared cache and refills —
//!   via a borrowing [`PageGuard`](crate::PageGuard) read when the page is
//!   still resident (no shard mutex; the slot's `Arc` is minted from the
//!   guard), pessimistically only on a genuine miss.
//!
//! Reading the generation *before* the fill only errs toward a stale (too
//! old) value, which makes slots expire sooner — never later — than a
//! per-fill-exact scheme would. A stale page can therefore never be served.
//!
//! ## What an L1 hit skips
//!
//! An L1 hit does not promote the page in the shard's replacement order.
//! This is deliberate and bounded: the page *is* still resident (the
//! generation proves it), and the worker will touch it again through the
//! shared path the moment the front misses. The divergence only shifts
//! replacement recency, never correctness, and only while nothing in the
//! shard is evicted — the first eviction resets all fronts for the shard.
//!
//! ## Statistics
//!
//! L1 hits accumulate in the front and are flushed to the owning worker's
//! [`BufferStats::hits_l1`](crate::BufferStats::hits_l1) counter via
//! [`L1Front::flush`]. Callers flush before every stats read so segment
//! deltas and aggregates reconcile exactly; the executor's per-task traces
//! assert this.

use crate::shared::{OptCoupling, PageGuard, PageSource, SharedAccess, SharedPageCache};
use psj_store::{PageError, PageId};
use std::sync::Arc;

/// Where a coupled lookup was served from; see [`L1Front::try_get_coupled`].
pub enum L1Read<'c, T> {
    /// A front slot hit: the pinned value, cloned. Counted in
    /// [`L1Front::pending_hits`] like every other front hit.
    Front(Arc<T>),
    /// Served by a borrowing coupled guard ([`PageGuard`]); the front slot
    /// was refilled from the guard so repeats hit the front.
    Guard(PageGuard<'c, T>),
    /// Served by the shared cache's fallback ladder (optimistic retry or
    /// pessimistic path) after the coupled guard read failed.
    Shared(Arc<T>, SharedAccess),
}

impl<T> std::ops::Deref for L1Read<'_, T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        match self {
            L1Read::Front(v) | L1Read::Shared(v, _) => v,
            L1Read::Guard(g) => g,
        }
    }
}

/// One direct-mapped slot: the page, the owning shard's generation at fill
/// time, and the pinned value.
struct Slot<T> {
    page: PageId,
    generation: u64,
    value: Arc<T>,
}

/// A small direct-mapped per-worker front for a [`SharedPageCache`]; see the
/// module docs for the coherence argument.
pub struct L1Front<T> {
    slots: Vec<Option<Slot<T>>>,
    mask: usize,
    /// Hits served from the front since the last [`L1Front::flush`].
    pending_hits: u64,
}

impl<T> L1Front<T> {
    /// Creates a front with `slots` direct-mapped entries (rounded up to a
    /// power of two, minimum 1).
    pub fn new(slots: usize) -> Self {
        let n = slots.max(1).next_power_of_two();
        L1Front {
            slots: (0..n).map(|_| None).collect(),
            mask: n - 1,
            pending_hits: 0,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the front has zero capacity (never true; `new` enforces ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Hits accumulated since the last flush.
    pub fn pending_hits(&self) -> u64 {
        self.pending_hits
    }

    #[inline]
    fn slot_of(&self, page: PageId) -> usize {
        // Same Fibonacci spread as the shared cache's shard hash, folded to
        // the slot count.
        let h = (page.0 as u64).wrapping_mul(0x9E3779B97F4A7C15);
        (h >> 32) as usize & self.mask
    }

    /// Looks up `page`, probing the front first and falling back to
    /// `cache.try_get` on a front miss (refilling the slot on success).
    ///
    /// Returns the value and how the request was satisfied;
    /// [`SharedAccess::HitLocal`] is reported for front hits (the hit is
    /// counted separately in `hits_l1` at [`L1Front::flush`] time, not in
    /// `hits_local`).
    pub fn try_get<S>(
        &mut self,
        cache: &SharedPageCache<T>,
        worker: usize,
        page: PageId,
        source: &S,
    ) -> Result<(Arc<T>, SharedAccess), PageError>
    where
        S: PageSource<Item = T> + ?Sized,
    {
        let idx = self.slot_of(page);
        // Read the generation once; it serves both the probe compare and —
        // because it was read *before* the fill — the refill stamp.
        let generation = cache.shard_generation(page);
        if let Some(slot) = &self.slots[idx] {
            if slot.page == page && slot.generation == generation {
                self.pending_hits += 1;
                return Ok((Arc::clone(&slot.value), SharedAccess::HitLocal));
            }
        }
        // Guard-renewable refill: a borrowing guard read validates the
        // page is resident without the shard mutex, and `to_arc` pays the
        // one refcount increment the slot needs to own the value. Only a
        // genuine miss (or contention fallback) takes the pessimistic
        // path. Stats stay exact: the guard path bumps the same
        // local/remote hit counters `try_get`'s fast path would.
        let (value, access) = match cache.guard_get(worker, page) {
            Some(guard) => (guard.to_arc(), guard.access()),
            None => cache.try_get(worker, page, source)?,
        };
        self.slots[idx] = Some(Slot {
            page,
            generation,
            value: Arc::clone(&value),
        });
        Ok((value, access))
    }

    /// As [`L1Front::try_get`], but the refill read participates in a
    /// cross-level coupling `chain` (see
    /// [`SharedPageCache::guard_get_coupled`]) and the guard borrow is
    /// returned to the caller instead of being collapsed into an `Arc` —
    /// the caller's read costs no refcount traffic beyond the slot refill.
    ///
    /// A front hit does not advance the chain (no shard version was
    /// validated); the next coupled read simply validates against the last
    /// *guarded* ancestor, which is exactly as strong a check.
    pub fn try_get_coupled<'c, S>(
        &mut self,
        cache: &'c SharedPageCache<T>,
        worker: usize,
        page: PageId,
        chain: &mut OptCoupling,
        source: &S,
    ) -> Result<L1Read<'c, T>, PageError>
    where
        S: PageSource<Item = T> + ?Sized,
    {
        let idx = self.slot_of(page);
        let generation = cache.shard_generation(page);
        if let Some(slot) = &self.slots[idx] {
            if slot.page == page && slot.generation == generation {
                self.pending_hits += 1;
                return Ok(L1Read::Front(Arc::clone(&slot.value)));
            }
        }
        match cache.guard_get_coupled(worker, page, chain) {
            Some(guard) => {
                self.slots[idx] = Some(Slot {
                    page,
                    generation,
                    value: guard.to_arc(),
                });
                Ok(L1Read::Guard(guard))
            }
            None => {
                let (value, access) = cache.try_get(worker, page, source)?;
                self.slots[idx] = Some(Slot {
                    page,
                    generation,
                    value: Arc::clone(&value),
                });
                Ok(L1Read::Shared(value, access))
            }
        }
    }

    /// Flushes accumulated front hits into `worker`'s
    /// [`BufferStats::hits_l1`](crate::BufferStats::hits_l1) counter.
    /// Call before reading stats that must include this front's activity.
    pub fn flush(&mut self, cache: &SharedPageCache<T>, worker: usize) {
        if self.pending_hits > 0 {
            cache.add_l1_hits(worker, self.pending_hits);
            self.pending_hits = 0;
        }
    }

    /// Drops every cached slot (the pins, not the shared cache's contents).
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
    }
}

impl<T> std::fmt::Debug for L1Front<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("L1Front")
            .field("slots", &self.slots.len())
            .field("filled", &self.slots.iter().filter(|s| s.is_some()).count())
            .field("pending_hits", &self.pending_hits)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Counting {
        fetches: AtomicU64,
    }

    impl PageSource for Counting {
        type Item = u32;

        fn fetch_page(&self, page: PageId) -> Result<u32, PageError> {
            self.fetches.fetch_add(1, Ordering::Relaxed);
            Ok(page.0)
        }

        fn page_count(&self) -> usize {
            1000
        }
    }

    fn counting() -> Counting {
        Counting {
            fetches: AtomicU64::new(0),
        }
    }

    fn p(n: u32) -> PageId {
        PageId(n)
    }

    #[test]
    fn repeat_hits_skip_the_shared_cache() {
        let cache: SharedPageCache<u32> = SharedPageCache::new(1, 64, 2, Policy::Lru);
        let src = counting();
        let mut l1 = L1Front::new(16);
        let (v, a) = l1.try_get(&cache, 0, p(3), &src).unwrap();
        assert_eq!((*v, a), (3, SharedAccess::Miss));
        for _ in 0..5 {
            let (v, a) = l1.try_get(&cache, 0, p(3), &src).unwrap();
            assert_eq!((*v, a), (3, SharedAccess::HitLocal));
        }
        // The shared cache saw exactly one request (the miss): the repeats
        // were absorbed by the front.
        assert_eq!(cache.stats(0).requests(), 1);
        assert_eq!(l1.pending_hits(), 5);
        l1.flush(&cache, 0);
        let stats = cache.stats(0);
        assert_eq!(stats.hits_l1, 5);
        assert_eq!(stats.requests(), 6, "after flush, every access counted");
        l1.flush(&cache, 0);
        assert_eq!(
            cache.stats(0).hits_l1,
            5,
            "flush is idempotent when drained"
        );
    }

    #[test]
    fn eviction_invalidates_front_slots() {
        // Single shard, capacity 1: every new page evicts the previous one.
        let cache: SharedPageCache<u32> = SharedPageCache::new(1, 1, 1, Policy::Lru);
        let src = counting();
        let mut l1 = L1Front::new(16);
        l1.try_get(&cache, 0, p(1), &src).unwrap();
        // p2 evicts p1 and bumps the shard generation.
        l1.try_get(&cache, 0, p(2), &src).unwrap();
        assert!(!cache.contains(p(1)));
        // The front must NOT serve its stale p1 slot: the access goes to the
        // shared cache and re-fetches.
        let (_, a) = l1.try_get(&cache, 0, p(1), &src).unwrap();
        assert_eq!(a, SharedAccess::Miss);
        assert_eq!(src.fetches.load(Ordering::Relaxed), 3);
        assert_eq!(l1.pending_hits(), 0, "no front hit was ever served");
    }

    #[test]
    fn colliding_slots_overwrite_and_stay_correct() {
        let cache: SharedPageCache<u32> = SharedPageCache::new(1, 64, 1, Policy::Lru);
        let src = counting();
        // One slot: every distinct page collides.
        let mut l1 = L1Front::new(1);
        assert_eq!(l1.len(), 1);
        for n in 0..8 {
            let (v, _) = l1.try_get(&cache, 0, p(n), &src).unwrap();
            assert_eq!(*v, n);
        }
        // Values stay correct under constant collision; no front hits accrue.
        assert_eq!(l1.pending_hits(), 0);
        // But a repeat of the most recent page hits.
        let (_, a) = l1.try_get(&cache, 0, p(7), &src).unwrap();
        assert_eq!(a, SharedAccess::HitLocal);
    }

    #[test]
    fn coupled_lookup_front_guard_and_fallback() {
        let cache: SharedPageCache<u32> = SharedPageCache::new(1, 64, 2, Policy::Lru);
        let src = counting();
        let mut l1 = L1Front::new(16);
        let mut chain = OptCoupling::root();
        // Cold: nothing mirrored yet → the guard read fails and the
        // pessimistic fallback fills.
        let r = l1
            .try_get_coupled(&cache, 0, p(5), &mut chain, &src)
            .unwrap();
        assert!(matches!(r, L1Read::Shared(_, SharedAccess::Miss)));
        assert_eq!(*r, 5);
        // Repeat: the refilled slot serves it.
        let r = l1
            .try_get_coupled(&cache, 0, p(5), &mut chain, &src)
            .unwrap();
        assert!(matches!(r, L1Read::Front(_)));
        assert_eq!(l1.pending_hits(), 1);
        // Front invalidated but the page is still resident: the coupled
        // guard read serves the borrow and refills the slot.
        l1.clear();
        let r = l1
            .try_get_coupled(&cache, 0, p(5), &mut chain, &src)
            .unwrap();
        assert!(matches!(r, L1Read::Guard(_)));
        assert_eq!(*r, 5);
        assert!(cache.opt_stats().guard_hits >= 1);
        drop(r);
        // ... and the refill means the next read is a front hit again.
        let r = l1
            .try_get_coupled(&cache, 0, p(5), &mut chain, &src)
            .unwrap();
        assert!(matches!(r, L1Read::Front(_)));
        assert_eq!(src.fetches.load(Ordering::Relaxed), 1, "one disk read");
        cache.check_invariants().unwrap();
    }

    #[test]
    fn clear_drops_pins() {
        let cache: SharedPageCache<u32> = SharedPageCache::new(1, 64, 1, Policy::Lru);
        let src = counting();
        let mut l1 = L1Front::new(4);
        l1.try_get(&cache, 0, p(1), &src).unwrap();
        l1.clear();
        let (_, a) = l1.try_get(&cache, 0, p(1), &src).unwrap();
        assert_eq!(a, SharedAccess::HitLocal, "shared cache still holds it");
    }
}
