//! Alternative page-replacement policies (FIFO, CLOCK) and a
//! policy-dispatching page buffer.
//!
//! The paper uses LRU throughout ([GR 93]); FIFO and CLOCK (second chance)
//! are provided for ablation: the `ablation` experiment binary quantifies
//! how much the join's spatial locality depends on true LRU ordering.

use crate::lru::Lru;
use psj_store::PageId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Which replacement policy a buffer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// Least recently used (the paper's choice).
    Lru,
    /// First in, first out.
    Fifo,
    /// CLOCK / second chance.
    Clock,
}

/// FIFO page buffer: eviction in insertion order; hits do not reorder.
#[derive(Debug, Clone)]
pub struct Fifo {
    queue: VecDeque<PageId>,
    set: HashMap<PageId, ()>,
    capacity: usize,
}

impl Fifo {
    /// Creates a FIFO buffer of the given capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be positive");
        Fifo {
            queue: VecDeque::with_capacity(capacity),
            set: HashMap::new(),
            capacity,
        }
    }

    /// Whether `page` is resident; FIFO hits do not change anything.
    pub fn touch(&mut self, page: PageId) -> bool {
        self.set.contains_key(&page)
    }

    /// Inserts `page`, evicting the oldest resident page when full.
    pub fn insert(&mut self, page: PageId) -> Option<PageId> {
        if self.set.contains_key(&page) {
            return None;
        }
        let evicted = if self.set.len() >= self.capacity {
            let victim = self.queue.pop_front().expect("full buffer has a front");
            self.set.remove(&victim);
            Some(victim)
        } else {
            None
        };
        self.queue.push_back(page);
        self.set.insert(page, ());
        evicted
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Whether `page` is resident (no side effects).
    pub fn contains(&self, page: PageId) -> bool {
        self.set.contains_key(&page)
    }
}

/// CLOCK (second chance) page buffer.
#[derive(Debug, Clone)]
pub struct Clock {
    frames: Vec<(PageId, bool)>, // (page, referenced)
    map: HashMap<PageId, usize>,
    hand: usize,
    capacity: usize,
}

impl Clock {
    /// Creates a CLOCK buffer of the given capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "CLOCK capacity must be positive");
        Clock {
            frames: Vec::with_capacity(capacity),
            map: HashMap::new(),
            hand: 0,
            capacity,
        }
    }

    /// Whether `page` is resident; a hit sets its reference bit.
    pub fn touch(&mut self, page: PageId) -> bool {
        match self.map.get(&page) {
            Some(&i) => {
                self.frames[i].1 = true;
                true
            }
            None => false,
        }
    }

    /// Inserts `page`, evicting via the clock hand when full.
    pub fn insert(&mut self, page: PageId) -> Option<PageId> {
        if self.touch(page) {
            return None;
        }
        if self.frames.len() < self.capacity {
            self.map.insert(page, self.frames.len());
            self.frames.push((page, true));
            return None;
        }
        // Advance the hand until a frame with a clear reference bit appears.
        loop {
            let (victim, referenced) = self.frames[self.hand];
            if referenced {
                self.frames[self.hand].1 = false;
                self.hand = (self.hand + 1) % self.capacity;
            } else {
                self.map.remove(&victim);
                self.frames[self.hand] = (page, true);
                self.map.insert(page, self.hand);
                self.hand = (self.hand + 1) % self.capacity;
                return Some(victim);
            }
        }
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Whether `page` is resident (no side effects).
    pub fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }
}

/// A page buffer dispatching over the three policies with the [`Lru`]
/// interface subset the buffer managers need.
#[derive(Debug, Clone)]
pub enum PageBuffer {
    /// LRU-managed buffer.
    Lru(Lru),
    /// FIFO-managed buffer.
    Fifo(Fifo),
    /// CLOCK-managed buffer.
    Clock(Clock),
}

impl PageBuffer {
    /// Creates a buffer with the given policy and capacity.
    pub fn new(policy: Policy, capacity: usize) -> Self {
        match policy {
            Policy::Lru => PageBuffer::Lru(Lru::new(capacity)),
            Policy::Fifo => PageBuffer::Fifo(Fifo::new(capacity)),
            Policy::Clock => PageBuffer::Clock(Clock::new(capacity)),
        }
    }

    /// Whether `page` is resident, updating policy state on a hit.
    pub fn touch(&mut self, page: PageId) -> bool {
        match self {
            PageBuffer::Lru(b) => b.touch(page),
            PageBuffer::Fifo(b) => b.touch(page),
            PageBuffer::Clock(b) => b.touch(page),
        }
    }

    /// Inserts `page`, returning the evicted victim if any.
    pub fn insert(&mut self, page: PageId) -> Option<PageId> {
        match self {
            PageBuffer::Lru(b) => b.insert(page),
            PageBuffer::Fifo(b) => b.insert(page),
            PageBuffer::Clock(b) => b.insert(page),
        }
    }

    /// Whether `page` is resident (no side effects).
    pub fn contains(&self, page: PageId) -> bool {
        match self {
            PageBuffer::Lru(b) => b.contains(page),
            PageBuffer::Fifo(b) => b.contains(page),
            PageBuffer::Clock(b) => b.contains(page),
        }
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        match self {
            PageBuffer::Lru(b) => b.len(),
            PageBuffer::Fifo(b) => b.len(),
            PageBuffer::Clock(b) => b.len(),
        }
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u32) -> PageId {
        PageId(n)
    }

    #[test]
    fn fifo_evicts_in_insertion_order() {
        let mut f = Fifo::new(2);
        assert_eq!(f.insert(p(1)), None);
        assert_eq!(f.insert(p(2)), None);
        assert!(f.touch(p(1)), "hit does not promote in FIFO");
        assert_eq!(
            f.insert(p(3)),
            Some(p(1)),
            "oldest goes first despite the hit"
        );
        assert_eq!(f.insert(p(4)), Some(p(2)));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn fifo_reinsert_resident_is_noop() {
        let mut f = Fifo::new(2);
        f.insert(p(1));
        assert_eq!(f.insert(p(1)), None);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn clock_second_chance() {
        let mut c = Clock::new(2);
        c.insert(p(1));
        c.insert(p(2));
        // Reference p1; the hand should skip it once and evict p2.
        assert!(c.touch(p(1)));
        // Hand at 0: p1 referenced → clear, advance; p2's bit is still set
        // from insertion... both inserted with ref=true, so the hand clears
        // p1, clears p2, wraps, and evicts p1? Verify the exact semantics:
        let evicted = c.insert(p(3)).unwrap();
        assert!(evicted == p(1) || evicted == p(2));
        assert!(c.contains(p(3)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn clock_prefers_unreferenced_victim() {
        let mut c = Clock::new(3);
        c.insert(p(1));
        c.insert(p(2));
        c.insert(p(3));
        // One full sweep clears all bits.
        c.insert(p(4)); // evicts p1 after clearing 1,2,3 (wraps to 0)
        assert!(!c.contains(p(1)));
        // Now touch p2 so it survives the next eviction.
        assert!(c.touch(p(2)));
        let evicted = c.insert(p(5)).unwrap();
        assert_ne!(evicted, p(2), "referenced page must get a second chance");
    }

    #[test]
    fn page_buffer_dispatch() {
        for policy in [Policy::Lru, Policy::Fifo, Policy::Clock] {
            let mut b = PageBuffer::new(policy, 3);
            assert!(b.is_empty());
            for n in 0..5 {
                b.insert(p(n));
            }
            assert_eq!(b.len(), 3, "{policy:?}");
            assert!(b.contains(p(4)), "{policy:?} keeps the newest page");
        }
    }

    #[test]
    fn policies_agree_below_capacity() {
        // With no evictions all policies behave identically.
        for policy in [Policy::Lru, Policy::Fifo, Policy::Clock] {
            let mut b = PageBuffer::new(policy, 100);
            for n in 0..50 {
                assert_eq!(b.insert(p(n)), None);
            }
            for n in 0..50 {
                assert!(b.touch(p(n)), "{policy:?} page {n}");
            }
            assert!(!b.touch(p(99)));
        }
    }
}
