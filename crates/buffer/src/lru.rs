//! O(1) LRU page buffer (Gray & Reuter style).
//!
//! A hash table maps page ids to slots of a slab; the slots form an intrusive
//! doubly-linked list ordered from most- to least-recently used. All
//! operations are O(1) expected time and allocation-free after warm-up.

use psj_store::PageId;
use std::collections::HashMap;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Slot {
    page: PageId,
    prev: u32,
    next: u32,
}

/// A least-recently-used buffer of page ids with fixed capacity.
///
/// The buffer tracks only *which* pages are resident; page contents stay in
/// the master [`psj_store::PageStore`]. This split keeps the cost model (what
/// the buffer decides) separate from the data model (real bytes, held once).
#[derive(Debug, Clone)]
pub struct Lru {
    map: HashMap<PageId, u32>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    capacity: usize,
}

impl Lru {
    /// Creates a buffer holding at most `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        Lru {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Maximum number of resident pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of resident pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `page` is resident (does not promote).
    pub fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    /// If `page` is resident, promote it to most-recently-used and return
    /// `true`; otherwise return `false`.
    pub fn touch(&mut self, page: PageId) -> bool {
        match self.map.get(&page) {
            Some(&slot) => {
                self.unlink(slot);
                self.push_front(slot);
                true
            }
            None => false,
        }
    }

    /// Inserts `page` as most-recently-used. If the buffer is full, the
    /// least-recently-used page is evicted and returned. Inserting a page
    /// that is already resident just promotes it.
    pub fn insert(&mut self, page: PageId) -> Option<PageId> {
        if self.touch(page) {
            return None;
        }
        let evicted = if self.map.len() >= self.capacity {
            Some(self.evict_lru())
        } else {
            None
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize].page = page;
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Slot {
                    page,
                    prev: NIL,
                    next: NIL,
                });
                s
            }
        };
        self.map.insert(page, slot);
        self.push_front(slot);
        debug_assert!(self.map.len() <= self.capacity);
        evicted
    }

    /// Removes `page` from the buffer if resident; returns whether it was.
    pub fn remove(&mut self, page: PageId) -> bool {
        match self.map.remove(&page) {
            Some(slot) => {
                self.unlink(slot);
                self.free.push(slot);
                true
            }
            None => false,
        }
    }

    /// The least-recently-used page, if any (does not remove it).
    pub fn lru_page(&self) -> Option<PageId> {
        (self.tail != NIL).then(|| self.slots[self.tail as usize].page)
    }

    /// Pages from most- to least-recently used (test/debug helper; O(n)).
    pub fn pages_mru_order(&self) -> Vec<PageId> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.slots[cur as usize].page);
            cur = self.slots[cur as usize].next;
        }
        out
    }

    fn evict_lru(&mut self) -> PageId {
        debug_assert!(self.tail != NIL);
        let slot = self.tail;
        let page = self.slots[slot as usize].page;
        self.unlink(slot);
        self.map.remove(&page);
        self.free.push(slot);
        page
    }

    fn unlink(&mut self, slot: u32) {
        let Slot { prev, next, .. } = self.slots[slot as usize];
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slots[slot as usize].prev = NIL;
        self.slots[slot as usize].next = NIL;
    }

    fn push_front(&mut self, slot: u32) {
        self.slots[slot as usize].prev = NIL;
        self.slots[slot as usize].next = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u32) -> PageId {
        PageId(n)
    }

    #[test]
    fn insert_until_capacity_no_eviction() {
        let mut l = Lru::new(3);
        assert_eq!(l.insert(p(1)), None);
        assert_eq!(l.insert(p(2)), None);
        assert_eq!(l.insert(p(3)), None);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut l = Lru::new(3);
        l.insert(p(1));
        l.insert(p(2));
        l.insert(p(3));
        assert_eq!(l.insert(p(4)), Some(p(1)));
        assert!(!l.contains(p(1)));
        assert!(l.contains(p(4)));
    }

    #[test]
    fn touch_promotes() {
        let mut l = Lru::new(3);
        l.insert(p(1));
        l.insert(p(2));
        l.insert(p(3));
        assert!(l.touch(p(1)));
        // 2 is now LRU.
        assert_eq!(l.insert(p(4)), Some(p(2)));
        assert!(l.contains(p(1)));
    }

    #[test]
    fn touch_missing_returns_false() {
        let mut l = Lru::new(2);
        assert!(!l.touch(p(9)));
    }

    #[test]
    fn reinsert_resident_promotes_without_eviction() {
        let mut l = Lru::new(2);
        l.insert(p(1));
        l.insert(p(2));
        assert_eq!(l.insert(p(1)), None);
        assert_eq!(l.len(), 2);
        assert_eq!(l.insert(p(3)), Some(p(2)));
    }

    #[test]
    fn remove_frees_slot() {
        let mut l = Lru::new(2);
        l.insert(p(1));
        l.insert(p(2));
        assert!(l.remove(p(1)));
        assert!(!l.remove(p(1)));
        assert_eq!(l.len(), 1);
        assert_eq!(l.insert(p(3)), None);
        assert_eq!(l.insert(p(4)), Some(p(2)));
    }

    #[test]
    fn mru_order_reflects_accesses() {
        let mut l = Lru::new(4);
        for n in [1, 2, 3, 4] {
            l.insert(p(n));
        }
        l.touch(p(2));
        assert_eq!(l.pages_mru_order(), vec![p(2), p(4), p(3), p(1)]);
        assert_eq!(l.lru_page(), Some(p(1)));
    }

    #[test]
    fn capacity_one() {
        let mut l = Lru::new(1);
        assert_eq!(l.insert(p(1)), None);
        assert_eq!(l.insert(p(2)), Some(p(1)));
        assert_eq!(l.insert(p(3)), Some(p(2)));
        assert_eq!(l.len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = Lru::new(0);
    }

    /// Cross-check against a naive reference implementation.
    #[test]
    fn matches_reference_model() {
        use std::collections::VecDeque;
        let mut l = Lru::new(5);
        let mut reference: VecDeque<PageId> = VecDeque::new(); // front = MRU
        let accesses: Vec<u32> = (0..500).map(|i| (i * 7 + i / 3) % 13).collect();
        for a in accesses {
            let page = p(a);
            let hit = l.touch(page);
            let ref_hit = reference.contains(&page);
            assert_eq!(hit, ref_hit, "hit mismatch for {page}");
            if ref_hit {
                let pos = reference.iter().position(|&q| q == page).unwrap();
                reference.remove(pos);
                reference.push_front(page);
            } else {
                let evicted = l.insert(page);
                if reference.len() >= 5 {
                    let ref_evicted = reference.pop_back();
                    assert_eq!(evicted, ref_evicted);
                } else {
                    assert_eq!(evicted, None);
                }
                reference.push_front(page);
            }
            assert_eq!(l.pages_mru_order(), Vec::from(reference.clone()));
        }
    }
}
