//! Buffer access statistics.

use serde::{Deserialize, Serialize};

/// Counters kept per buffer manager (and per processor where that makes
/// sense). "Disk accesses" in the paper's figures equals [`misses`].
///
/// [`misses`]: BufferStats::misses
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferStats {
    /// Hits served from the requesting processor's own memory.
    pub hits_local: u64,
    /// Hits absorbed by a worker's private L1 front (`L1Front`) without
    /// consulting the shared cache's shards at all. A subset of what would
    /// otherwise be `hits_local`: the page was resident and owned by this
    /// worker when the front last filled the slot, and the shard generation
    /// proves it has not been evicted since.
    pub hits_l1: u64,
    /// Hits served from another processor's partition over the interconnect
    /// (global buffer only).
    pub hits_remote: u64,
    /// Hits on an in-flight disk read issued by another processor: the
    /// requester waits for that read instead of issuing its own.
    pub hits_in_flight: u64,
    /// Misses, i.e. actual disk reads.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Hits on the R\*-tree path buffers (bypass the page buffer entirely).
    pub hits_path: u64,
    /// Fetch attempts retried under the cache's `RetryPolicy` after a
    /// transient source error (each retry of each fill counts once).
    pub retries: u64,
}

impl BufferStats {
    /// Total page requests that reached the buffer layer (excludes path
    /// buffer hits, which are absorbed before the buffer is consulted).
    pub fn requests(&self) -> u64 {
        self.hits_local + self.hits_l1 + self.hits_remote + self.hits_in_flight + self.misses
    }

    /// Hit ratio over buffer-layer requests, in `[0, 1]`; 0 when idle.
    pub fn hit_ratio(&self) -> f64 {
        let r = self.requests();
        if r == 0 {
            0.0
        } else {
            (r - self.misses) as f64 / r as f64
        }
    }

    /// Element-wise difference against an earlier snapshot of the same
    /// counters, isolating the activity between the two observations.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds, via underflow) if `earlier` is not actually
    /// an earlier snapshot — counters only grow.
    pub fn since(&self, earlier: &BufferStats) -> BufferStats {
        BufferStats {
            hits_local: self.hits_local - earlier.hits_local,
            hits_l1: self.hits_l1 - earlier.hits_l1,
            hits_remote: self.hits_remote - earlier.hits_remote,
            hits_in_flight: self.hits_in_flight - earlier.hits_in_flight,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            hits_path: self.hits_path - earlier.hits_path,
            retries: self.retries - earlier.retries,
        }
    }

    /// Element-wise sum, for aggregating per-processor counters.
    pub fn merged(&self, other: &BufferStats) -> BufferStats {
        BufferStats {
            hits_local: self.hits_local + other.hits_local,
            hits_l1: self.hits_l1 + other.hits_l1,
            hits_remote: self.hits_remote + other.hits_remote,
            hits_in_flight: self.hits_in_flight + other.hits_in_flight,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            hits_path: self.hits_path + other.hits_path,
            retries: self.retries + other.retries,
        }
    }
}

/// Counters for the optimistic (seqlock) read path of
/// [`SharedPageCache`](crate::SharedPageCache), kept separately from
/// [`BufferStats`] so the wire format and every existing reconciliation
/// (`BufferStats` vs `TaskTrace`) are unchanged: an optimistic hit is still
/// counted as a local/remote hit in [`BufferStats`]; these counters only
/// say *how* the read path got there.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptStats {
    /// Hits served without taking the shard mutex (version validated).
    pub hits: u64,
    /// Validation failures: the shard version moved (or a writer was
    /// active) between snapshot and validation, and the read was retried.
    pub retries: u64,
    /// Reads that exhausted their validation attempts and fell back to the
    /// pessimistic mutex path — including guard descents whose coupling
    /// chain broke (parent evicted mid-descent).
    pub fallbacks: u64,
    /// Borrowing-guard reads ([`PageGuard`](crate::PageGuard)) served with
    /// neither shard mutex nor Arc clone. Disjoint from `hits`: a read is
    /// counted as exactly one of the two depending on which entry point
    /// served it.
    pub guard_hits: u64,
    /// Coupled descents: a child guard whose parent link validated with
    /// the parent shard's version unchanged (the cross-level fast path).
    pub coupled: u64,
    /// Chain repairs: the parent's shard version advanced but the parent
    /// page itself was still resident, so the chain was renewed in place
    /// instead of broken.
    pub renewed: u64,
}

impl OptStats {
    /// Element-wise sum, for aggregating per-worker counters.
    pub fn merged(&self, other: &OptStats) -> OptStats {
        OptStats {
            hits: self.hits + other.hits,
            retries: self.retries + other.retries,
            fallbacks: self.fallbacks + other.fallbacks,
            guard_hits: self.guard_hits + other.guard_hits,
            coupled: self.coupled + other.coupled,
            renewed: self.renewed + other.renewed,
        }
    }

    /// Element-wise difference against an earlier snapshot (see
    /// [`BufferStats::since`]).
    pub fn since(&self, earlier: &OptStats) -> OptStats {
        OptStats {
            hits: self.hits - earlier.hits,
            retries: self.retries - earlier.retries,
            fallbacks: self.fallbacks - earlier.fallbacks,
            guard_hits: self.guard_hits - earlier.guard_hits,
            coupled: self.coupled - earlier.coupled,
            renewed: self.renewed - earlier.renewed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_stats_merge_and_since() {
        let a = OptStats {
            hits: 5,
            retries: 1,
            fallbacks: 0,
            guard_hits: 4,
            coupled: 3,
            renewed: 1,
        };
        let b = OptStats {
            hits: 2,
            retries: 0,
            fallbacks: 1,
            guard_hits: 1,
            coupled: 0,
            renewed: 0,
        };
        let m = a.merged(&b);
        assert_eq!(
            m,
            OptStats {
                hits: 7,
                retries: 1,
                fallbacks: 1,
                guard_hits: 5,
                coupled: 3,
                renewed: 1,
            }
        );
        assert_eq!(m.since(&b), a);
    }

    #[test]
    fn hit_ratio_zero_when_idle() {
        assert_eq!(BufferStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn hit_ratio_counts_all_hit_kinds() {
        let s = BufferStats {
            hits_local: 2,
            hits_remote: 1,
            hits_in_flight: 1,
            misses: 4,
            ..Default::default()
        };
        assert_eq!(s.requests(), 8);
        assert_eq!(s.hit_ratio(), 0.5);
    }

    #[test]
    fn merged_adds_fields() {
        let a = BufferStats {
            hits_local: 1,
            misses: 2,
            retries: 3,
            ..Default::default()
        };
        let b = BufferStats {
            hits_local: 3,
            evictions: 1,
            retries: 1,
            ..Default::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.hits_local, 4);
        assert_eq!(m.misses, 2);
        assert_eq!(m.evictions, 1);
        assert_eq!(m.retries, 4);
    }

    #[test]
    fn since_subtracts_retries() {
        let earlier = BufferStats {
            retries: 2,
            misses: 5,
            ..Default::default()
        };
        let later = BufferStats {
            retries: 7,
            misses: 9,
            ..Default::default()
        };
        let d = later.since(&earlier);
        assert_eq!(d.retries, 5);
        assert_eq!(d.misses, 4);
    }
}
