//! The cluster subcommands: shard planning, the router process, and the
//! in-process cluster benchmark.

use crate::args::Args;
use psj_cluster::{format_topology, parse_topology, plan_shards, Router, RouterConfig, ShardAddr};
use psj_datagen::io::load_map;
use psj_datagen::Scenario;
use psj_rtree::{bulk::bulk_load_str, PagedTree, RTree};
use psj_serve::{loadgen, LoadConfig, ServeConfig, Server};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

type CmdResult = Result<(), String>;

fn io_err<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}

/// Builds a shard's tree over its bucket of items, with geometry attached
/// from the source objects so refinement works through the cluster.
fn shard_tree(
    items: &[(psj_geom::Rect, u64)],
    geoms: &HashMap<u64, psj_geom::Polyline>,
) -> PagedTree {
    let tree = if items.is_empty() {
        RTree::new()
    } else {
        bulk_load_str(items)
    };
    PagedTree::freeze_with_attrs(&tree, |oid| geoms.get(&oid).cloned(), 1365)
}

/// `psj shard-plan` — partition two map files into N shards: per-shard
/// tree files plus a topology file the router consumes.
pub fn shard_plan(args: &Args) -> CmdResult {
    let map1 = args.require("map1")?;
    let map2 = args.require("map2")?;
    let shards: usize = args.parse_or("shards", 3usize)?;
    if shards == 0 || shards >= usize::from(u16::MAX) {
        return Err(format!("--shards {shards} out of range"));
    }
    let out_dir = PathBuf::from(args.require("out")?);
    let host = args.get("host").unwrap_or("127.0.0.1");
    let base_port: u16 = args.parse_or("base-port", 7001u16)?;
    std::fs::create_dir_all(&out_dir).map_err(io_err)?;

    let objs1 = load_map(Path::new(map1)).map_err(io_err)?;
    let objs2 = load_map(Path::new(map2)).map_err(io_err)?;
    let items1: Vec<(psj_geom::Rect, u64)> = objs1.iter().map(|o| (o.mbr(), o.oid)).collect();
    let items2: Vec<(psj_geom::Rect, u64)> = objs2.iter().map(|o| (o.mbr(), o.oid)).collect();
    let geoms1: HashMap<u64, psj_geom::Polyline> =
        objs1.iter().map(|o| (o.oid, o.geom.clone())).collect();
    let geoms2: HashMap<u64, psj_geom::Polyline> =
        objs2.iter().map(|o| (o.oid, o.geom.clone())).collect();

    let plan = plan_shards(&items1, &items2, shards);
    let buckets1 = plan.assign(&items1);
    let buckets2 = plan.assign(&items2);
    let mut topo = Vec::with_capacity(plan.len());
    for (i, spec) in plan.shards.iter().enumerate() {
        let path_a = out_dir.join(format!("shard{i}_a.psjt"));
        let path_b = out_dir.join(format!("shard{i}_b.psjt"));
        let ta = shard_tree(&buckets1[i], &geoms1);
        let tb = shard_tree(&buckets2[i], &geoms2);
        ta.save_to(&path_a).map_err(io_err)?;
        tb.save_to(&path_b).map_err(io_err)?;
        println!(
            "shard {i}: x in [{:?}, {:?}), {} + {} objects -> {} + {}",
            spec.x_lo,
            spec.x_hi,
            ta.len(),
            tb.len(),
            path_a.display(),
            path_b.display()
        );
        topo.push(psj_cluster::TopoShard {
            id: spec.id,
            addr: format!("{host}:{}", base_port + spec.id),
            x_lo: spec.x_lo,
            x_hi: spec.x_hi,
            trees: vec![path_a.display().to_string(), path_b.display().to_string()],
        });
    }
    let topo_path = out_dir.join("topology.txt");
    std::fs::write(&topo_path, format_topology(&topo)).map_err(io_err)?;
    let replicas1: usize = buckets1.iter().map(Vec::len).sum();
    let replicas2: usize = buckets2.iter().map(Vec::len).sum();
    println!(
        "planned {} shards ({} + {} placements from {} + {} objects) -> {}",
        plan.len(),
        replicas1,
        replicas2,
        items1.len(),
        items2.len(),
        topo_path.display()
    );
    Ok(())
}

/// Converts a topology file into router shard addresses.
fn router_shards(topo_path: &str) -> Result<Vec<ShardAddr>, String> {
    let text =
        std::fs::read_to_string(Path::new(topo_path)).map_err(|e| format!("{topo_path}: {e}"))?;
    let topo = parse_topology(&text)?;
    topo.iter()
        .map(|s| {
            let addr: std::net::SocketAddr = s
                .addr
                .parse()
                .map_err(|_| format!("shard {}: invalid address {}", s.id, s.addr))?;
            Ok(ShardAddr {
                id: s.id,
                addr,
                x_lo: s.x_lo,
                x_hi: s.x_hi,
            })
        })
        .collect()
}

/// `psj cluster-serve` — run the scatter-gather router over the shards a
/// topology file describes (the shards themselves run as `psj serve
/// --shard-id N` processes).
pub fn cluster_serve(args: &Args) -> CmdResult {
    let topo_path = args.require("topology")?;
    let addr_str = args.get("addr").unwrap_or("127.0.0.1:7900");
    let addr: std::net::SocketAddr = addr_str
        .parse()
        .map_err(|_| format!("invalid address: {addr_str}"))?;
    let shards = router_shards(topo_path)?;
    let cfg = RouterConfig {
        addr,
        shards,
        ..RouterConfig::default()
    };
    let n = cfg.shards.len();
    let router = Router::start(cfg).map_err(io_err)?;
    println!(
        "routing on {} for {n} shards (send a Shutdown request to stop)",
        router.local_addr()
    );
    router.wait();
    println!("router stopped");
    Ok(())
}

/// One measured cluster configuration.
struct ClusterRow {
    id: String,
    shards: usize,
    degraded: bool,
    throughput_rps: f64,
    completed: u64,
    partials: u64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Stands up `n` in-process shard servers plus a router over them,
/// returning the handles (shard 0 first).
fn start_cluster(
    items1: &[(psj_geom::Rect, u64)],
    items2: &[(psj_geom::Rect, u64)],
    n: usize,
) -> Result<(Vec<Server>, Router), String> {
    let plan = plan_shards(items1, items2, n);
    let buckets1 = plan.assign(items1);
    let buckets2 = plan.assign(items2);
    let empty = HashMap::new();
    let mut servers = Vec::with_capacity(plan.len());
    let mut shards = Vec::with_capacity(plan.len());
    for (i, spec) in plan.shards.iter().enumerate() {
        let ta = Arc::new(shard_tree(&buckets1[i], &empty));
        let tb = Arc::new(shard_tree(&buckets2[i], &empty));
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            join_threads: 2,
            cache_pages: 2048,
            shard_id: spec.id,
            read_timeout: std::time::Duration::from_millis(100),
            ..ServeConfig::default()
        };
        let server = Server::start(cfg, vec![ta, tb]).map_err(io_err)?;
        shards.push(ShardAddr {
            id: spec.id,
            addr: server.local_addr(),
            x_lo: spec.x_lo,
            x_hi: spec.x_hi,
        });
        servers.push(server);
    }
    let router = Router::start(RouterConfig {
        shards,
        ..RouterConfig::default()
    })
    .map_err(io_err)?;
    Ok((servers, router))
}

/// `psj bench-cluster` — in-process cluster benchmark: the same seeded
/// closed-loop workload through a router over 1, 2, and 4 shards, plus a
/// degraded run (3 shards, one stopped) that exercises partial answers.
/// Writes `results/cluster_baseline.json` with the scaling ratio
/// `cluster_scaling_4v1` that `bench-check --min-cluster-scaling` gates.
pub fn bench_cluster(args: &Args) -> CmdResult {
    let scale: f64 = args.parse_or("scale", 0.05)?;
    let seed: u64 = args.parse_or("seed", 1996u64)?;
    let clients: usize = args.parse_or("clients", 2usize)?;
    let requests: usize = args.parse_or("requests", 150usize)?;
    let out = args.get("out").unwrap_or("results/cluster_baseline.json");

    println!("generating scenario (scale {scale}, seed {seed})...");
    let (m1, m2) = Scenario::scaled(seed, scale).generate();
    let items1: Vec<(psj_geom::Rect, u64)> = m1.iter().map(|o| (o.mbr(), o.oid)).collect();
    let items2: Vec<(psj_geom::Rect, u64)> = m2.iter().map(|o| (o.mbr(), o.oid)).collect();
    println!("{} + {} objects", items1.len(), items2.len());

    let load = |addr| LoadConfig {
        addr,
        clients,
        requests_per_client: requests,
        seed,
        // Mostly windows and nearests with a sliver of joins, under a
        // deadline so a degraded cluster sheds instead of stalling.
        window_frac: 0.75,
        nearest_frac: 0.2,
        deadline_ms: 2_000,
        reconnect: true,
        ..LoadConfig::default()
    };

    let mut rows: Vec<ClusterRow> = Vec::new();
    for &n in &[1usize, 2, 4] {
        let (servers, router) = start_cluster(&items1, &items2, n)?;
        let cfg = load(router.local_addr());
        let report = loadgen::run(&cfg).map_err(io_err)?;
        println!(
            "shards={n}: {:.1} req/s, {} completed ({} partial), {} errors, \
             p50 {:.2} ms, p99 {:.2} ms",
            report.throughput_rps,
            report.completed,
            report.partials,
            report.errors,
            report.p50_ms,
            report.p99_ms
        );
        rows.push(ClusterRow {
            id: format!("shards{n}"),
            shards: n,
            degraded: false,
            throughput_rps: report.throughput_rps,
            completed: report.completed,
            partials: report.partials,
            p50_ms: report.p50_ms,
            p99_ms: report.p99_ms,
        });
        router.stop();
        for s in servers {
            s.stop();
        }
    }

    // Degraded mode: three shards, one stopped before the run. The router
    // marks it down and degrades to partial answers; the workload must
    // still mostly complete.
    {
        let (mut servers, router) = start_cluster(&items1, &items2, 3)?;
        servers.remove(1).stop();
        let cfg = load(router.local_addr());
        let report = loadgen::run(&cfg).map_err(io_err)?;
        println!(
            "shards=3 degraded (shard 1 down): {:.1} req/s, {} completed \
             ({} partial), {} errors",
            report.throughput_rps, report.completed, report.partials, report.errors
        );
        if report.completed == 0 {
            return Err("degraded cluster completed nothing".into());
        }
        rows.push(ClusterRow {
            id: "shards3_degraded".to_string(),
            shards: 3,
            degraded: true,
            throughput_rps: report.throughput_rps,
            completed: report.completed,
            partials: report.partials,
            p50_ms: report.p50_ms,
            p99_ms: report.p99_ms,
        });
        router.stop();
        for s in servers {
            s.stop();
        }
    }

    let tp = |id: &str| {
        rows.iter()
            .find(|r| r.id == id)
            .map(|r| r.throughput_rps)
            .unwrap_or(0.0)
    };
    let scaling_4v1 = if tp("shards1") > 0.0 {
        tp("shards4") / tp("shards1")
    } else {
        0.0
    };
    println!("cluster scaling (4 shards vs 1): {scaling_4v1:.3}x");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"psj-bench-cluster-v1\",\n");
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"scale\": {scale},\n"));
    json.push_str(&format!("  \"clients\": {clients},\n"));
    json.push_str(&format!("  \"requests_per_client\": {requests},\n"));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"shards\": {}, \"degraded\": {}, \
             \"throughput_rps\": {:.3}, \"completed\": {}, \"partials\": {}, \
             \"p50_ms\": {:.6}, \"p99_ms\": {:.6}}}{}\n",
            r.id,
            r.shards,
            r.degraded,
            r.throughput_rps,
            r.completed,
            r.partials,
            r.p50_ms,
            r.p99_ms,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"cluster_scaling_4v1\": {scaling_4v1:.4}\n"));
    json.push_str("}\n");
    if let Some(dir) = Path::new(out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(io_err)?;
        }
    }
    std::fs::write(out, &json).map_err(io_err)?;
    println!("wrote {out}");
    Ok(())
}
