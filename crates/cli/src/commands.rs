//! The CLI subcommands.

use crate::args::Args;
use psj_core::{
    create_tasks, expand_pair, morselize, run_join, run_native_join, run_sim_join, try_run_join,
    Assignment, BufferConfig, BufferOrg, CandidateEstimator, JoinEngine, KernelScratch,
    MorselOptions, NativeConfig, NativeError, RectItem, RunControl, SimConfig, StealPolicy,
    TaskOrigin,
};
use psj_datagen::io::{load_map, save_map};
use psj_datagen::Scenario;
use psj_desim::{simulate_schedule, ScheduleAssign, ScheduleSpec};
use psj_obs::TraceSink;
use psj_rtree::{bulk::bulk_load_str, fsck_file, PagedTree, RTree};
use psj_serve::{loadgen, Client, ClientError, LoadConfig, Response, ServeConfig, Server};
use psj_store::{FaultPlan, RetryPolicy};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Top-level usage text.
pub const USAGE: &str = "\
psj — parallel spatial joins on R*-trees

commands:
  generate --scale <f> --seed <n> --out1 <map> --out2 <map>
  build    --map <map> --out <tree> [--attrs <bytes>] [--str|--hilbert]
  stats    --tree <tree>
  join     --tree1 <tree> --tree2 <tree> [--threads <n>] [--no-refine]
           [--engine rtree|partition|auto] [--morsel-cands <n>]
           [--steal busiest|rr|seeded] [--steal-seed <n>]
           [--cache <pages>] [--cache-org local|global] [--cache-shards <n>]
           [--inject-faults <spec>] [--retry-attempts <n>]
           [--trace <file.jsonl>] [--tasks] — --engine picks the executor:
           rtree (the paper's synchronized traversal, default), partition
           (in-memory uniform grid + per-cell sweep), or auto (chosen per
           run from estimated candidates and cache budget); --trace writes
           a Perfetto/chrome://tracing-loadable JSONL trace; --tasks prints
           per-morsel attribution (pages, hits, steals, wall time);
           --morsel-cands sets the target estimated candidates per morsel
           (0 = auto)
  fsck     <tree>  (or --tree <tree>) — prints a JSON integrity report,
           exits nonzero if the index is damaged
  simulate --tree1 <tree> --tree2 <tree> [--procs <n>] [--disks <n>]
           [--buffer <pages>] [--variant lsr|gsrr|gd|best]
  serve    --trees <tree>[,<tree>...] [--addr 127.0.0.1:7878] [--workers <n>]
           [--queue-bound <n>] [--batch-window-us <us>] [--max-batch <n>]
           [--cache <pages>] [--cache-shards <n>] [--join-threads <n>]
           [--join-morsel-cands <n>] [--join-steal busiest|rr|seeded]
           [--join-steal-seed <n>] [--join-engine rtree|partition|auto]
           [--lenient] [--inject-faults <spec>] [--retry-attempts <n>]
           [--trace <file.jsonl>] [--shard-id <n>] — --trace writes the
           trace at shutdown; the --join-* tuning flags mirror `join`'s
           flags exactly; --shard-id tags this server for cluster routing
  shard-plan --map1 <map> --map2 <map> --shards <n> --out <dir>
           [--host <ip>] [--base-port <n>] — partition both maps into x-slab
           shards balanced by estimated join work; writes per-shard tree
           pairs plus topology.txt for cluster-serve
  cluster-serve --topology <file> [--addr 127.0.0.1:7900] — scatter-gather
           router over `psj serve --shard-id <n>` shard processes; speaks
           the same wire protocol as a single server, degrades to partial
           answers when shards are down
  bench-cluster [--scale <f>] [--seed <n>] [--clients <n>] [--requests <n>]
           [--out <file.json>] — in-process cluster benchmark: the same
           workload through a router over 1/2/4 shards plus a degraded run
           (3 shards, one down); writes results/cluster_baseline.json with
           cluster_scaling_4v1 for bench-check
  query    --addr <host:port> [--tree <n>] (--window xl,yl,xu,yu |
           --nearest x,y [--k <n>] | --join-with <n> | --stats | --shutdown)
           — partial answers from a degraded cluster print a
           `partial (missing shards: ...)` banner before the payload
  metrics  --addr <host:port> — scrape Prometheus-text metrics from a
           running server
  trace-check <file.jsonl>  (or --file <file.jsonl>) — validate a trace
           file: every line parses, spans nest or are disjoint per thread
  bench-serve --addr <host:port> [--clients <n>] [--requests <n>] [--seed <n>]
           [--window-frac <f>] [--nearest-frac <f>] [--deadline-ms <n>]
           [--k <n>] [--window-extent <f>] [--reconnect] [--out <file.json>]
           [--shutdown] — --reconnect retries dropped connections with
           bounded backoff (for load against a cluster router)
  bench-join [--scale <f>] [--seed <n>] [--reps <n>] [--quick]
           [--out <file.json>] — in-process join benchmark: scalar-vs-SoA
           sweep kernel plus a join matrix (1/2/4/8 threads × assignment ×
           buffer org; --quick: 1/2/4 threads) and an in-memory engine
           comparison (R-tree vs partition on identical unbuffered joins,
           both pre-indexed and from raw streams where the R-tree engine
           pays index construction; reported as `engines` rows with both
           partition/rtree wall ratios), plus a contended-read row (N
           workers re-reading one tree through a shared cache over three
           read paths — locked mutex, Arc-clone optimistic, borrowing
           guard — reporting the seqlock hit shares and the
           opt-vs-locked / guard-vs-arc wall speedups).
           speedup_vs_t1 is the *scheduled* speedup: the t=1 run's
           per-morsel wall costs replayed through the deterministic
           scheduler simulation with n virtual workers (machine-
           independent; wall_speedup_vs_t1 reports the raw wall ratio).
           Writes BENCH_join.json unless --out is given
  bench-check --baseline <file.json> --candidate <file.json>
           [--tolerance <f>] [--min <id>=<floor>[,...]] [--require-steals]
           [--min-partition <f>] — compare two bench-join reports on their
           machine-independent ratios (kernel speedup, scheduled speedup vs
           t=1); --min adds absolute floors on named rows (e.g.
           t4_gd_global=1.2); --require-steals fails unless some candidate
           row stole; --min-partition puts an absolute floor on the
           candidate's stream-input partition-vs-rtree wall ratio (index
           build counted on the rtree side); --min-opt-share <f> puts a
           floor on the candidate's contended-read optimistic-hit share
           (which code path served resident-page reads — machine-
           independent); --min-opt-speedup <f> and --min-guard-speedup
           <f> put floors on the contended-read wall ratios (optimistic
           vs locked, guard vs arc — same-process relative cost of the
           read paths); --min-cluster-scaling <f>
           [--cluster <file.json>] puts a floor on bench-cluster's 4-shard
           vs 1-shard throughput ratio (standalone: baseline/candidate may
           be omitted); exits nonzero on any regression
  help

options may be written --key value or --key=value

fault spec grammar (comma-separated key=value):
  seed=<u64> transient=<p> burst=<n> flip=<p> torn=<p> latency-us=<n> latency-p=<p>
  e.g. --inject-faults seed=42,transient=0.2,burst=2,flip=0.01";

type CmdResult = Result<(), String>;

fn io_err<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}

/// The join-tuning knobs `psj join` and `psj serve` share. Both surfaces
/// parse through [`parse_join_tuning`] — `join` with bare flag names
/// (`--morsel-cands`, `--steal`, `--steal-seed`, `--engine`), `serve` with
/// the `join-` prefix (`--join-morsel-cands`, ...) — so the two flag sets
/// and their validation cannot drift.
struct JoinTuningArgs {
    morsel_candidates: u64,
    steal: StealPolicy,
    steal_seed: u64,
    engine: JoinEngine,
}

/// Parses the shared join-tuning flags, each named `--{prefix}{flag}`.
fn parse_join_tuning(args: &Args, prefix: &str) -> Result<JoinTuningArgs, String> {
    let key = |flag: &str| format!("{prefix}{flag}");
    let morsel_candidates = args.parse_or(&key("morsel-cands"), 0u64)?;
    let steal_key = key("steal");
    let steal = match args.get(&steal_key) {
        Some(policy) => StealPolicy::parse(policy).ok_or_else(|| {
            format!("unknown --{steal_key} policy: {policy} (use busiest|rr|seeded)")
        })?,
        None => StealPolicy::Busiest,
    };
    let steal_seed = args.parse_or(&key("steal-seed"), 0u64)?;
    let engine_key = key("engine");
    let engine = match args.get(&engine_key) {
        Some(name) => JoinEngine::parse(name)
            .ok_or_else(|| format!("unknown --{engine_key}: {name} (use rtree|partition|auto)"))?,
        None => JoinEngine::RTree,
    };
    Ok(JoinTuningArgs {
        morsel_candidates,
        steal,
        steal_seed,
        engine,
    })
}

/// `psj generate` — write a synthetic TIGER-like scenario to two map files.
pub fn generate(args: &Args) -> CmdResult {
    let scale: f64 = args.parse_or("scale", 0.1)?;
    let seed: u64 = args.parse_or("seed", 1996)?;
    let out1 = args.require("out1")?;
    let out2 = args.require("out2")?;
    let scenario = if (scale - 1.0).abs() < 1e-12 {
        Scenario::paper(seed)
    } else {
        Scenario::scaled(seed, scale)
    };
    let t0 = Instant::now();
    let (m1, m2) = scenario.generate();
    save_map(&m1, Path::new(out1)).map_err(io_err)?;
    save_map(&m2, Path::new(out2)).map_err(io_err)?;
    println!(
        "wrote {} objects to {out1} and {} objects to {out2} ({:.2?})",
        m1.len(),
        m2.len(),
        t0.elapsed()
    );
    Ok(())
}

/// `psj build` — index a map file into a persisted R*-tree.
pub fn build(args: &Args) -> CmdResult {
    let map_path = args.require("map")?;
    let out = args.require("out")?;
    let attrs: u64 = args.parse_or("attrs", 1365)?;
    let objects = load_map(Path::new(map_path)).map_err(io_err)?;
    let t0 = Instant::now();
    let tree = if args.flag("str") {
        let items: Vec<(psj_geom::Rect, u64)> = objects.iter().map(|o| (o.mbr(), o.oid)).collect();
        bulk_load_str(&items)
    } else if args.flag("hilbert") {
        let items: Vec<(psj_geom::Rect, u64)> = objects.iter().map(|o| (o.mbr(), o.oid)).collect();
        psj_rtree::hilbert::bulk_load_hilbert(&items)
    } else {
        let mut t = RTree::new();
        for o in &objects {
            t.insert(o.mbr(), o.oid);
        }
        t
    };
    let geoms: HashMap<u64, psj_geom::Polyline> =
        objects.iter().map(|o| (o.oid, o.geom.clone())).collect();
    let paged = PagedTree::freeze_with_attrs(&tree, |oid| geoms.get(&oid).cloned(), attrs);
    paged.save_to(Path::new(out)).map_err(io_err)?;
    println!(
        "indexed {} objects into {} pages (height {}) in {:.2?} -> {out}",
        paged.len(),
        paged.num_pages(),
        paged.height(),
        t0.elapsed()
    );
    Ok(())
}

/// `psj stats` — print a tree's Table-1 statistics.
pub fn stats(args: &Args) -> CmdResult {
    let tree = PagedTree::load_from(Path::new(args.require("tree")?)).map_err(io_err)?;
    println!("{}", tree.stats());
    Ok(())
}

/// `psj join` — native multithreaded join of two persisted trees.
pub fn join(args: &Args) -> CmdResult {
    let a = PagedTree::load_from(Path::new(args.require("tree1")?)).map_err(io_err)?;
    let b = PagedTree::load_from(Path::new(args.require("tree2")?)).map_err(io_err)?;
    let threads: usize = args.parse_or(
        "threads",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4),
    )?;
    let mut cfg = NativeConfig::new(threads);
    cfg.refine = !args.flag("no-refine");
    let tuning = parse_join_tuning(args, "")?;
    cfg.morsel_candidates = tuning.morsel_candidates;
    cfg.steal = tuning.steal;
    cfg.steal_seed = tuning.steal_seed;
    cfg.engine = tuning.engine;
    if let Some(pages) = args.get("cache") {
        let capacity_pages: usize = pages
            .parse()
            .map_err(|_| format!("invalid value for --cache: {pages}"))?;
        let org = match args.get("cache-org").unwrap_or("global") {
            "local" => BufferOrg::Local,
            "global" => BufferOrg::Global,
            other => return Err(format!("unknown cache org: {other} (use local|global)")),
        };
        let mut buffer = BufferConfig::global(capacity_pages);
        buffer.org = org;
        buffer.shards = args.parse_or("cache-shards", buffer.shards)?;
        cfg.buffer = Some(buffer);
    }
    let fault = match args.get("inject-faults") {
        Some(spec) => Some(Arc::new(FaultPlan::parse(spec)?)),
        None => None,
    };
    let mut ctl = RunControl::default();
    if let Some(plan) = &fault {
        ctl = ctl.with_fault(Arc::clone(plan));
    }
    if let Some(n) = args.get("retry-attempts") {
        let attempts: u32 = n
            .parse()
            .map_err(|_| format!("invalid value for --retry-attempts: {n}"))?;
        ctl = ctl.with_retry(RetryPolicy::attempts(attempts));
    }
    let trace = args.get("trace").map(|_| TraceSink::new(1 << 22));
    if let Some(sink) = &trace {
        ctl = ctl.with_trace(Arc::clone(sink));
    }
    let res = match try_run_join(&a, &b, &cfg, &ctl) {
        Ok(res) => res,
        Err(NativeError::Storage(je)) => {
            if let Some(plan) = &fault {
                eprintln!("injected faults:    {}", plan.summary());
            }
            return Err(format!(
                "join aborted by storage failure ({} tasks failed): {}",
                je.failed_tasks, je.error
            ));
        }
        Err(NativeError::Cancelled) => unreachable!("no cancel token installed"),
        Err(e @ NativeError::WorkerPanic { .. }) => return Err(e.to_string()),
    };
    println!("threads:            {threads}");
    println!(
        "engine:             {}{}",
        res.engine.short(),
        if cfg.engine == JoinEngine::Auto {
            " (auto-selected)"
        } else {
            ""
        }
    );
    println!("tasks:              {}", res.tasks);
    println!(
        "morsels:            {} (steal policy {})",
        res.morsels,
        cfg.steal.short()
    );
    println!("node pairs:         {}", res.node_pairs);
    println!("filter candidates:  {}", res.candidates);
    if res.engine == JoinEngine::Partition {
        println!(
            "grid replication:   {} replicated placements, {} cross-cell pairs deduped",
            res.replicated, res.deduped
        );
    }
    println!(
        "{} {}",
        if cfg.refine {
            "exact results:     "
        } else {
            "candidate results: "
        },
        res.pairs.len()
    );
    println!("steals:             {}", res.steals);
    if let Some(stats) = &res.buffer {
        let org = match cfg.buffer.as_ref().map(|b| b.org) {
            Some(BufferOrg::Local) => "local",
            _ => "global",
        };
        println!(
            "page cache ({org}):  {} requests, {:.1}% hit ({} L1 / {} local / {} remote / \
             {} in-flight), {} misses, {} evictions",
            stats.requests(),
            100.0 * stats.hit_ratio(),
            stats.hits_l1,
            stats.hits_local,
            stats.hits_remote,
            stats.hits_in_flight,
            stats.misses,
            stats.evictions
        );
    }
    if let Some(plan) = &fault {
        println!("injected faults:    {}", plan.summary());
        if let Some(stats) = &res.buffer {
            println!("page retries:       {}", stats.retries);
        }
    }
    if !res.task_traces.is_empty() {
        let (mut assigned, mut injector, mut stolen) = (0u64, 0u64, 0u64);
        for t in &res.task_traces {
            match t.origin {
                TaskOrigin::Assigned => assigned += 1,
                TaskOrigin::Injector => injector += 1,
                TaskOrigin::Steal => stolen += 1,
            }
        }
        println!(
            "task segments:      {} ({assigned} assigned / {injector} injector / {stolen} stolen)",
            res.task_traces.len()
        );
        if args.flag("tasks") {
            println!(
                "  {:<6} {:<6} {:<5} {:<8} {:>10} {:>10} {:>7} {:>7} {:>7} {:>7} {:>7}  wall",
                "morsel",
                "worker",
                "tasks",
                "origin",
                "node-prs",
                "cands",
                "pages",
                "hit-l",
                "hit-r",
                "miss",
                "retry"
            );
            let mut by_morsel = res.task_traces.clone();
            by_morsel.sort_by_key(|t| t.morsel);
            for t in &by_morsel {
                let origin = match t.origin {
                    TaskOrigin::Assigned => "assigned",
                    TaskOrigin::Injector => "injector",
                    TaskOrigin::Steal => "stolen",
                };
                println!(
                    "  {:<6} {:<6} {:<5} {:<8} {:>10} {:>10} {:>7} {:>7} {:>7} {:>7} {:>7}  {:.3?}",
                    t.morsel,
                    t.worker,
                    t.tasks,
                    origin,
                    t.node_pairs,
                    t.candidates,
                    t.pages,
                    t.hits_local,
                    t.hits_remote,
                    t.misses,
                    t.retries,
                    t.wall
                );
            }
        }
    }
    if let Some(sink) = &trace {
        let path = args.get("trace").expect("sink exists only with --trace");
        let lines = sink.write_to_file(Path::new(path)).map_err(io_err)?;
        println!(
            "trace:              {lines} events -> {path} ({} dropped)",
            sink.dropped()
        );
    }
    println!("wall time:          {:.3?}", res.elapsed);
    Ok(())
}

/// `psj fsck` — verify an index file and print a JSON integrity report.
pub fn fsck(args: &Args) -> CmdResult {
    let path = args.require("tree")?;
    let report = fsck_file(Path::new(path));
    println!("{}", report.to_json());
    if report.ok() {
        Ok(())
    } else {
        Err(format!("{path}: integrity check failed"))
    }
}

/// `psj serve` — run the query service until a client sends Shutdown.
pub fn serve(args: &Args) -> CmdResult {
    let tree_list = args.require("trees")?;
    let lenient = args.flag("lenient");
    let mut trees = Vec::new();
    for path in tree_list.split(',').filter(|s| !s.is_empty()) {
        let t = if lenient {
            let l = PagedTree::load_from_lenient(Path::new(path)).map_err(io_err)?;
            if !l.corrupt_pages.is_empty() {
                println!(
                    "loaded {path} LENIENT: {} corrupt pages poisoned \
                     (queries touching them return storage errors)",
                    l.corrupt_pages.len()
                );
            }
            l.tree
        } else {
            PagedTree::load_from(Path::new(path)).map_err(io_err)?
        };
        println!(
            "loaded {path}: {} objects, {} pages, height {}",
            t.len(),
            t.num_pages(),
            t.height()
        );
        trees.push(Arc::new(t));
    }
    let tuning = parse_join_tuning(args, "join-")?;
    let cfg = ServeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
        workers: args.parse_or(
            "workers",
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
        )?,
        queue_bound: args.parse_or("queue-bound", 256)?,
        batch_window: std::time::Duration::from_micros(args.parse_or("batch-window-us", 2_000u64)?),
        max_batch: args.parse_or("max-batch", 32)?,
        cache_pages: args.parse_or("cache", 4096)?,
        cache_shards: args.parse_or("cache-shards", 16)?,
        join_threads: args.parse_or("join-threads", 4)?,
        join_morsel_candidates: tuning.morsel_candidates,
        join_steal: tuning.steal,
        join_steal_seed: tuning.steal_seed,
        join_engine: tuning.engine,
        fault: match args.get("inject-faults") {
            Some(spec) => Some(Arc::new(FaultPlan::parse(spec)?)),
            None => None,
        },
        retry: RetryPolicy::attempts(args.parse_or("retry-attempts", 3)?),
        trace: args.get("trace").map(|_| TraceSink::new(1 << 22)),
        shard_id: args.parse_or("shard-id", 0u16)?,
        ..ServeConfig::default()
    };
    let trace = cfg.trace.clone();
    let server = Server::start(cfg, trees).map_err(io_err)?;
    println!(
        "serving on {} (send a Shutdown request to stop)",
        server.local_addr()
    );
    let report = server.wait();
    println!("--- server report ---\n{report}");
    if let Some(sink) = &trace {
        let path = args.get("trace").expect("sink exists only with --trace");
        let lines = sink.write_to_file(Path::new(path)).map_err(io_err)?;
        println!(
            "trace: {lines} events -> {path} ({} dropped)",
            sink.dropped()
        );
    }
    Ok(())
}

/// `psj metrics` — scrape the Prometheus text exposition from a running
/// server and print it. The counters are the same atomics the `--stats`
/// report reads, so the two views always agree.
pub fn metrics(args: &Args) -> CmdResult {
    let addr_str = args.require("addr")?;
    let addr: std::net::SocketAddr = addr_str
        .parse()
        .map_err(|_| format!("invalid address: {addr_str}"))?;
    let mut client =
        Client::connect_timeout(&addr, std::time::Duration::from_secs(30)).map_err(io_err)?;
    let text = client.metrics().map_err(client_err)?;
    print!("{text}");
    Ok(())
}

/// `psj trace-check` — validate a JSONL trace file written by
/// `join --trace` or `serve --trace`: every line must parse as a Chrome
/// trace event and span begin/end pairs must balance on every thread row.
/// Exits nonzero on a malformed trace.
pub fn trace_check(args: &Args) -> CmdResult {
    let path = args.require("file")?;
    let text = std::fs::read_to_string(Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
    let summary =
        psj_obs::validate_jsonl(&text).map_err(|e| format!("{path}: invalid trace: {e}"))?;
    println!(
        "{path}: ok — {} lines ({} spans, {} instants, {} metadata)",
        summary.lines, summary.spans, summary.instants, summary.meta
    );
    if summary.spans == 0 {
        return Err(format!("{path}: trace contains no spans"));
    }
    Ok(())
}

/// One comma-separated list of exactly `N` floats.
fn parse_floats<const N: usize>(key: &str, value: &str) -> Result<[f64; N], String> {
    let parts: Vec<f64> = value
        .split(',')
        .map(|s| s.trim().parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|_| format!("invalid --{key}: {value} (expected {N} comma-separated numbers)"))?;
    parts
        .try_into()
        .map_err(|_| format!("invalid --{key}: {value} (expected {N} comma-separated numbers)"))
}

/// Maps a non-payload server response to the CLI error string.
fn describe_response(r: Response) -> String {
    match r {
        Response::Storage { kind, msg } => format!("storage error ({kind}): {msg}"),
        Response::Overloaded => "server overloaded".into(),
        Response::DeadlineExceeded => "deadline exceeded".into(),
        Response::Error(msg) => format!("server error: {msg}"),
        other => format!("unexpected response: {other:?}"),
    }
}

fn client_err(e: ClientError) -> String {
    match e {
        ClientError::Unexpected(r) => describe_response(*r),
        ClientError::Io(e) => format!("transport error: {e}"),
    }
}

/// Peels one `Partial` wrapper off a query reply error: a router degrades
/// to `Partial { missing_shards, inner }` when shards are down, and `psj
/// query` should print the surviving payload under a `partial` banner
/// rather than exit nonzero.
fn split_partial(e: ClientError) -> Result<(Vec<u16>, Response), String> {
    match e {
        ClientError::Unexpected(r) => match *r {
            Response::Partial {
                missing_shards,
                inner,
            } => Ok((missing_shards, *inner)),
            other => Err(describe_response(other)),
        },
        other => Err(client_err(other)),
    }
}

fn partial_banner(missing: &[u16]) {
    let ids: Vec<String> = missing.iter().map(u16::to_string).collect();
    println!("partial (missing shards: {})", ids.join(","));
}

/// `psj query` — one-shot client: issue a single query (or stats/shutdown)
/// against a running server. Exits nonzero on any non-payload reply, with
/// storage errors reported as `storage error (corrupt|unavailable): ...`.
pub fn query(args: &Args) -> CmdResult {
    let addr_str = args.require("addr")?;
    let addr: std::net::SocketAddr = addr_str
        .parse()
        .map_err(|_| format!("invalid address: {addr_str}"))?;
    let mut client =
        Client::connect_timeout(&addr, std::time::Duration::from_secs(30)).map_err(io_err)?;
    if args.flag("shutdown") {
        client.shutdown().map_err(client_err)?;
        println!("server acknowledged shutdown");
        return Ok(());
    }
    if args.flag("stats") {
        let stats = client.stats().map_err(client_err)?;
        println!("{stats}");
        return Ok(());
    }
    let tree: u16 = args.parse_or("tree", 0u16)?;
    let deadline_ms: u32 = args.parse_or("deadline-ms", 0u32)?;
    if let Some(w) = args.get("window") {
        let [xl, yl, xu, yu] = parse_floats::<4>("window", w)?;
        let oids = match client.window(tree, psj_geom::Rect::new(xl, yl, xu, yu), deadline_ms) {
            Ok(oids) => oids,
            Err(e) => match split_partial(e)? {
                (missing, Response::Entries(oids)) => {
                    partial_banner(&missing);
                    oids
                }
                (_, other) => return Err(describe_response(other)),
            },
        };
        println!("{} entries", oids.len());
        for oid in oids {
            println!("{oid}");
        }
    } else if let Some(p) = args.get("nearest") {
        let [x, y] = parse_floats::<2>("nearest", p)?;
        let k: u32 = args.parse_or("k", 10u32)?;
        let nn = match client.nearest(tree, x, y, k, deadline_ms) {
            Ok(nn) => nn,
            Err(e) => match split_partial(e)? {
                (missing, Response::Neighbors(nn)) => {
                    partial_banner(&missing);
                    nn
                }
                (_, other) => return Err(describe_response(other)),
            },
        };
        println!("{} neighbors", nn.len());
        for (dist, oid) in nn {
            println!("{oid}\t{dist}");
        }
    } else if let Some(other) = args.get("join-with") {
        let other: u16 = other
            .parse()
            .map_err(|_| format!("invalid --join-with: {other}"))?;
        let pairs = match client.join(tree, other, true, deadline_ms) {
            Ok(pairs) => pairs,
            Err(e) => match split_partial(e)? {
                (missing, Response::Pairs(pairs)) => {
                    partial_banner(&missing);
                    pairs
                }
                (_, other) => return Err(describe_response(other)),
            },
        };
        println!("{} pairs", pairs.len());
    } else {
        return Err(
            "query needs one of --window, --nearest, --join-with, --stats, --shutdown".into(),
        );
    }
    Ok(())
}

/// `psj bench-serve` — closed-loop load generator against a running server.
pub fn bench_serve(args: &Args) -> CmdResult {
    let addr_str = args.require("addr")?;
    let addr: std::net::SocketAddr = addr_str
        .parse()
        .map_err(|_| format!("invalid address: {addr_str}"))?;
    let cfg = LoadConfig {
        addr,
        clients: args.parse_or("clients", 4)?,
        requests_per_client: args.parse_or("requests", 250)?,
        seed: args.parse_or("seed", 42)?,
        window_frac: args.parse_or("window-frac", 0.7)?,
        nearest_frac: args.parse_or("nearest-frac", 0.3)?,
        deadline_ms: args.parse_or("deadline-ms", 0)?,
        k: args.parse_or("k", 10)?,
        window_extent: args.parse_or("window-extent", 0.05)?,
        reconnect: args.flag("reconnect"),
    };
    if cfg.window_frac < 0.0 || cfg.nearest_frac < 0.0 || cfg.window_frac + cfg.nearest_frac > 1.0 {
        return Err("window-frac and nearest-frac must be non-negative and sum to <= 1".into());
    }
    let report = loadgen::run(&cfg).map_err(io_err)?;
    println!(
        "{} offered, {} completed ({} partial), {} shed, {} timed out, {} storage errors, {} errors in {:.3} s",
        report.offered,
        report.completed,
        report.partials,
        report.shed,
        report.timeouts,
        report.storage,
        report.errors,
        report.elapsed_s
    );
    println!(
        "throughput: {:.1} req/s; client latency p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms",
        report.throughput_rps, report.p50_ms, report.p95_ms, report.p99_ms
    );
    if let Some(s) = &report.server {
        println!("--- server stats ---\n{s}");
    }
    if let Some(out) = args.get("out") {
        if let Some(dir) = Path::new(out).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(io_err)?;
            }
        }
        std::fs::write(out, report.to_json(&cfg)).map_err(io_err)?;
        println!("wrote {out}");
    }
    if args.flag("shutdown") {
        let mut c = psj_serve::Client::connect(addr).map_err(io_err)?;
        c.shutdown().map_err(|e| e.to_string())?;
        println!("server acknowledged shutdown");
    }
    Ok(())
}

/// `psj simulate` — run the KSR1-style simulated platform.
pub fn simulate(args: &Args) -> CmdResult {
    let a = PagedTree::load_from(Path::new(args.require("tree1")?)).map_err(io_err)?;
    let b = PagedTree::load_from(Path::new(args.require("tree2")?)).map_err(io_err)?;
    let procs: usize = args.parse_or("procs", 8)?;
    let disks: usize = args.parse_or("disks", procs)?;
    let buffer: usize = args.parse_or("buffer", 100 * procs)?;
    let variant = args.get("variant").unwrap_or("best");
    let cfg = match variant {
        "lsr" => SimConfig::lsr(procs, disks, buffer),
        "gsrr" => SimConfig::gsrr(procs, disks, buffer),
        "gd" => SimConfig::gd(procs, disks, buffer),
        "best" => SimConfig::best(procs, disks, buffer),
        other => return Err(format!("unknown variant: {other} (use lsr|gsrr|gd|best)")),
    };
    let m = run_sim_join(&a, &b, &cfg).metrics;
    println!("variant:            {variant}");
    println!("processors/disks:   {}/{}", m.num_procs, m.num_disks);
    println!("tasks:              {}", m.tasks);
    println!("response time:      {:.1} s", m.response_secs());
    println!(
        "proc finish:        min {:.1} / avg {:.1} / max {:.1} s",
        m.min_finish_secs(),
        m.avg_finish_secs(),
        m.max_finish_secs()
    );
    println!("disk accesses:      {}", m.disk_accesses);
    println!("  directory pages:  {}", m.dir_page_reads);
    println!("  data pages:       {}", m.data_page_reads);
    println!("buffer hit ratio:   {:.1} %", m.buffer.hit_ratio() * 100.0);
    println!("path buffer hits:   {}", m.buffer.hits_path);
    println!("candidates:         {}", m.candidates);
    println!("reassignments:      {}", m.reassignments);
    println!("total busy time:    {:.1} s", m.total_busy_secs());
    Ok(())
}

/// Builds an in-memory STR-packed tree over `objects`, with geometry
/// attached so the join's refinement step is exercised.
fn bench_tree(objects: &[psj_datagen::MapObject]) -> PagedTree {
    let items: Vec<(psj_geom::Rect, u64)> = objects.iter().map(|o| (o.mbr(), o.oid)).collect();
    let tree = bulk_load_str(&items);
    let geoms: HashMap<u64, psj_geom::Polyline> =
        objects.iter().map(|o| (o.oid, o.geom.clone())).collect();
    PagedTree::freeze_with_attrs(&tree, |oid| geoms.get(&oid).cloned(), 1365)
}

/// One row of the bench-join matrix.
struct BenchJoinRow {
    id: String,
    threads: usize,
    assignment: &'static str,
    org: &'static str,
    wall_ms: f64,
    /// Scheduled (critical-path) speedup: the t=1 run's per-morsel costs
    /// replayed through `psj_desim::simulate_schedule` with this row's
    /// worker count and assignment. Machine-independent — meaningful even
    /// when the host has fewer physical cores than `threads`.
    speedup_vs_t1: f64,
    /// Raw wall-clock ratio vs. the t=1 run of the same combo. Reported
    /// for context, never gated: on a single-core host it hovers near 1x.
    wall_speedup_vs_t1: f64,
    morsels: usize,
    steals: u64,
    pairs: usize,
    hits_local: u64,
    hits_l1: u64,
    hits_remote: u64,
    misses: u64,
    evictions: u64,
}

/// `psj bench-join` — in-process join benchmark. Times the sweep kernel
/// (pre-change scalar path with its per-call MBR copy vs. the SoA chunked
/// path) over the real node-pair stream of a join, then runs a matrix of
/// full joins (threads × assignment × buffer organization) and writes one
/// JSON report. The committed `BENCH_join.json` at the repo root is the
/// baseline `bench-check` compares against.
pub fn bench_join(args: &Args) -> CmdResult {
    let quick = args.flag("quick");
    let scale: f64 = args.parse_or("scale", if quick { 0.08 } else { 0.25 })?;
    let seed: u64 = args.parse_or("seed", 1996)?;
    let reps: u32 = args.parse_or("reps", if quick { 3 } else { 7 })?;
    let out = args.get("out").unwrap_or("BENCH_join.json");

    println!("generating scenario (scale {scale}, seed {seed})...");
    let (m1, m2) = Scenario::scaled(seed, scale).generate();
    let a = bench_tree(&m1);
    let b = bench_tree(&m2);
    let total_pages = a.num_pages() + b.num_pages();
    println!(
        "trees: {} + {} objects, {} pages total",
        a.len(),
        b.len(),
        total_pages
    );

    // --- Kernel micro-benchmark -------------------------------------------
    // Collect the equal-level node-pair stream a join actually sweeps, by
    // expanding the phase-1 task set to exhaustion.
    let tc = create_tasks(&a, &b, 64);
    let mut stream = Vec::new();
    {
        let mut scratch = KernelScratch::default();
        let mut stack = tc.tasks.clone();
        let mut candidates = Vec::new();
        while let Some(p) = stack.pop() {
            if p.la == p.lb {
                stream.push(p);
            }
            let na = a.node(p.a);
            let nb = b.node(p.b);
            expand_pair(na, nb, &p, &mut scratch, &mut stack, &mut candidates);
        }
    }
    println!("kernel stream: {} node pairs", stream.len());

    use psj_geom::sweep::{sweep_pairs_restricted, sweep_pairs_soa, SweepScratch};
    let mut filt_a = Vec::new();
    let mut filt_b = Vec::new();
    let mut sweep_scratch = SweepScratch::default();
    let mut pairs = Vec::new();
    let mut mbrs_a: Vec<psj_geom::Rect> = Vec::new();
    let mut mbrs_b: Vec<psj_geom::Rect> = Vec::new();

    // Scalar baseline: the pre-SoA kernel copied every entry MBR into a
    // scratch vector on each call, then ran the scalar restricted sweep.
    let mut scalar_pairs = 0u64;
    let mut scalar_ns = u128::MAX;
    // SoA path: the frozen per-node SoA view feeds the chunked filter.
    let mut soa_pairs = 0u64;
    let mut soa_ns = u128::MAX;
    // The two passes interleave and each path keeps its *minimum* rep time:
    // the minimum is the least contaminated by scheduler noise and frequency
    // scaling, which on small containers can double a single rep's time.
    for rep in 0..=reps {
        // rep 0 is an untimed warm-up for both paths.
        let t0 = Instant::now();
        let mut produced = 0u64;
        for p in &stream {
            let na = a.node(p.a);
            let nb = b.node(p.b);
            mbrs_a.clear();
            mbrs_b.clear();
            if p.la == 0 {
                mbrs_a.extend(na.data_entries().iter().map(|e| e.mbr));
                mbrs_b.extend(nb.data_entries().iter().map(|e| e.mbr));
            } else {
                mbrs_a.extend(na.dir_entries().iter().map(|e| e.mbr));
                mbrs_b.extend(nb.dir_entries().iter().map(|e| e.mbr));
            }
            pairs.clear();
            sweep_pairs_restricted(
                &mbrs_a,
                &mbrs_b,
                &p.window,
                &mut filt_a,
                &mut filt_b,
                &mut pairs,
            );
            produced += pairs.len() as u64;
        }
        if rep > 0 {
            scalar_ns = scalar_ns.min(t0.elapsed().as_nanos());
            scalar_pairs = produced;
        }

        let t1 = Instant::now();
        let mut produced = 0u64;
        for p in &stream {
            let na = a.node(p.a);
            let nb = b.node(p.b);
            pairs.clear();
            sweep_pairs_soa(
                na.soa_mbrs(),
                nb.soa_mbrs(),
                &p.window,
                &mut sweep_scratch,
                &mut pairs,
            );
            produced += pairs.len() as u64;
        }
        if rep > 0 {
            soa_ns = soa_ns.min(t1.elapsed().as_nanos());
            soa_pairs = produced;
        }
    }
    if scalar_pairs != soa_pairs {
        return Err(format!(
            "kernel mismatch: scalar produced {scalar_pairs} pairs, SoA {soa_pairs}"
        ));
    }
    let scalar_pps = scalar_pairs as f64 / (scalar_ns as f64 / 1e9);
    let soa_pps = soa_pairs as f64 / (soa_ns as f64 / 1e9);
    let kernel_speedup = soa_pps / scalar_pps;
    println!(
        "kernel: scalar {:.2} Mpairs/s, SoA {:.2} Mpairs/s, speedup {kernel_speedup:.2}x",
        scalar_pps / 1e6,
        soa_pps / 1e6
    );

    // --- Join matrix ------------------------------------------------------
    // Every run of a combo shares one morsel plan: phase 1 is pinned to the
    // same task count (min_tasks_factor × threads = 64) and the morsel
    // budget is resolved once up front, so the t=1 run's measured per-morsel
    // wall costs apply exactly to every other thread count. The gated
    // `speedup_vs_t1` is the *scheduled* speedup: those costs replayed
    // through `psj_desim::simulate_schedule` with this row's worker count —
    // a machine-independent critical-path metric. The raw wall-clock ratio
    // is reported alongside (`wall_speedup_vs_t1`) but never gated, because
    // on a host with fewer physical cores than `threads` it is bounded by
    // ~1x no matter how good the schedule is.
    let thread_list: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let combos: &[(Assignment, &str, BufferOrg, &str)] = if quick {
        // Keep the static round-robin combo in quick mode: its skewed deal
        // is what forces idle workers through the steal path.
        &[
            (Assignment::Dynamic, "gd", BufferOrg::Global, "global"),
            (
                Assignment::StaticRoundRobin,
                "gsrr",
                BufferOrg::Global,
                "global",
            ),
        ]
    } else {
        &[
            (Assignment::Dynamic, "gd", BufferOrg::Global, "global"),
            (Assignment::Dynamic, "gd", BufferOrg::Local, "local"),
            (
                Assignment::StaticRoundRobin,
                "gsrr",
                BufferOrg::Global,
                "global",
            ),
        ]
    };
    let est = CandidateEstimator::new(&a, &b);
    let pinned_budget = morselize(&a, &b, &tc.tasks, &est, &MorselOptions::new(8)).budget;
    println!("morsel budget pinned at {pinned_budget} estimated candidates");
    let capacity = (total_pages / 2).max(8);
    let mut rows: Vec<BenchJoinRow> = Vec::new();
    for &(assignment, aname, org, oname) in combos {
        let mut t1_ms = 0.0f64;
        let mut t1_costs: Vec<u64> = Vec::new();
        for &threads in thread_list {
            let mut buffer = BufferConfig::global(capacity);
            buffer.org = org;
            let mut cfg = NativeConfig::buffered(threads, buffer);
            cfg.assignment = assignment;
            cfg.min_tasks_factor = 64 / threads;
            cfg.morsel_candidates = pinned_budget;
            let res = run_native_join(&a, &b, &cfg);
            let stats = res.buffer.unwrap_or_default();
            let wall_ms = res.elapsed.as_secs_f64() * 1e3;
            if threads == 1 {
                t1_ms = wall_ms;
                let mut timed: Vec<(u32, u64)> = res
                    .task_traces
                    .iter()
                    .map(|t| (t.morsel, (t.wall.as_nanos() as u64).max(1)))
                    .collect();
                timed.sort_unstable();
                t1_costs = timed.into_iter().map(|(_, ns)| ns).collect();
            }
            if t1_costs.len() != res.morsels {
                return Err(format!(
                    "morsel plan drifted across thread counts: t=1 planned {} \
                     morsels, t={threads} planned {}",
                    t1_costs.len(),
                    res.morsels
                ));
            }
            let sim = simulate_schedule(
                &t1_costs,
                &ScheduleSpec {
                    workers: threads,
                    assign: match assignment {
                        Assignment::Dynamic => ScheduleAssign::Shared,
                        Assignment::StaticRange => ScheduleAssign::Range,
                        Assignment::StaticRoundRobin => ScheduleAssign::RoundRobin,
                    },
                    steal: true,
                    seed: None,
                },
            );
            let speedup = sim.speedup();
            let wall_speedup = if t1_ms > 0.0 { t1_ms / wall_ms } else { 1.0 };
            println!(
                "join t={threads} {aname}/{oname}: {:.1} ms, scheduled {:.2}x vs t=1 \
                 (wall {:.2}x), {} morsels, {} steals, {} pairs, \
                 L1 {} / local {} / remote {} hits, {} misses",
                wall_ms,
                speedup,
                wall_speedup,
                res.morsels,
                res.steals,
                res.pairs.len(),
                stats.hits_l1,
                stats.hits_local,
                stats.hits_remote,
                stats.misses
            );
            rows.push(BenchJoinRow {
                id: format!("t{threads}_{aname}_{oname}"),
                threads,
                assignment: aname,
                org: oname,
                wall_ms,
                speedup_vs_t1: speedup,
                wall_speedup_vs_t1: wall_speedup,
                morsels: res.morsels,
                steals: res.steals,
                pairs: res.pairs.len(),
                hits_local: stats.hits_local,
                hits_l1: stats.hits_l1,
                hits_remote: stats.hits_remote,
                misses: stats.misses,
                evictions: stats.evictions,
            });
        }
    }

    // --- Contended-read micro-benchmark -----------------------------------
    // N workers re-read one small tree through a shared cache whose budget
    // covers every page, so after a single warm pass the whole tree stays
    // resident and every timed read is a hit. What this measures is *which
    // code path* serves those hits: the gated `opt_hit_share` is the
    // fraction served by the seqlock optimistic path (no shard mutex
    // taken) — a pure path-count ratio, machine-independent — while
    // reads/sec is reported for context and never gated. Capacity is 2x
    // the page count because the shard hash can skew pages across shards;
    // an exactly-covering budget could overflow one shard's slice and
    // evict, which would poison the share with refill misses.
    struct ContendedRow {
        workers: usize,
        pages: usize,
        reads: u64,
        wall_ms: f64,
        reads_per_sec: f64,
        opt: psj_buffer::OptStats,
        opt_hit_share: f64,
        guard_hit_share: f64,
        locked_wall_ms: f64,
        guard_wall_ms: f64,
        /// Arc-clone optimistic path vs the all-mutex pessimistic path.
        opt_speedup_vs_locked: f64,
        /// Borrowing-guard path vs the Arc-clone optimistic path.
        guard_speedup_vs_arc: f64,
    }
    let contended = {
        use psj_buffer::{PageSource, Policy, SharedPageCache};
        use psj_rtree::Node;
        use psj_store::{PageError, PageId};

        struct TreeSource<'t> {
            t: &'t PagedTree,
        }
        impl PageSource for TreeSource<'_> {
            type Item = Node;
            fn fetch_page(&self, page: PageId) -> Result<Node, PageError> {
                Ok(Node::decode(self.t.pages().read(page)))
            }
            fn page_count(&self) -> usize {
                self.t.num_pages()
            }
        }

        const WORKERS: usize = 4;
        let pages = b.num_pages();
        let reads_per_worker: usize = if quick { 40_000 } else { 150_000 };
        let cache: SharedPageCache<Node> = SharedPageCache::new(WORKERS, pages * 2, 8, Policy::Lru);
        let src = TreeSource { t: &b };
        for p in 0..pages {
            let _ = cache.get(0, PageId(p as u32), &src);
        }

        // One timed pass per read path over the identical resident working
        // set: `locked` forces every read through the shard mutex
        // (`try_get_locked`), `arc` is the seqlock optimistic path
        // returning an owned Arc (`get`), `guard` is the borrowing
        // pin-guarded read (`guard_get`, derefed in place — no Arc
        // clone). Minimum over `reps` runs, the usual noise defense; the
        // two speedup ratios are same-machine same-process wall ratios.
        let reps = if quick { 2 } else { 3 };
        let pass = |read: &(dyn Fn(usize, PageId) + Sync)| -> f64 {
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                std::thread::scope(|s| {
                    for w in 0..WORKERS {
                        s.spawn(move || {
                            for i in 0..reads_per_worker {
                                // Strides co-prime with typical page
                                // counts, offset per worker: workers
                                // collide on the same pages, which is the
                                // contention being measured.
                                let p = (i * 7 + w * 13) % pages;
                                read(w, PageId(p as u32));
                            }
                        });
                    }
                });
                best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            }
            best
        };
        let locked_wall_ms = pass(&|w, p| {
            let _ = cache.try_get_locked(w, p, &src);
        });
        let base = cache.opt_stats();
        let wall_ms = pass(&|w, p| {
            let _ = cache.get(w, p, &src);
        });
        let arc_opt = cache.opt_stats().since(&base);
        let base = cache.opt_stats();
        let guard_wall_ms = pass(&|w, p| match cache.guard_get(w, p) {
            Some(g) => {
                std::hint::black_box(&*g);
            }
            None => {
                let _ = cache.get(w, p, &src);
            }
        });
        let guard_opt = cache.opt_stats().since(&base);
        let opt = arc_opt.merged(&guard_opt);

        let reads = (WORKERS * reads_per_worker) as u64;
        let pass_reads = reads * reps as u64;
        let reads_per_sec = reads as f64 / (wall_ms / 1e3);
        // Path-count shares are per pass set: the arc passes feed `hits`,
        // the guard passes feed `guard_hits`.
        let opt_hit_share = arc_opt.hits as f64 / pass_reads as f64;
        let guard_hit_share = guard_opt.guard_hits as f64 / pass_reads as f64;
        let opt_speedup_vs_locked = locked_wall_ms / wall_ms;
        let guard_speedup_vs_arc = wall_ms / guard_wall_ms;
        println!(
            "contended: {WORKERS} workers x {reads_per_worker} reads over {pages} pages\n\
             \x20 locked {locked_wall_ms:.1} ms, arc {wall_ms:.1} ms ({:.1} Mreads/s), \
             guard {guard_wall_ms:.1} ms\n\
             \x20 opt share {opt_hit_share:.3}, guard share {guard_hit_share:.3} \
             ({} opt hits, {} guard hits, {} retries, {} fallbacks)\n\
             \x20 opt vs locked {opt_speedup_vs_locked:.2}x, \
             guard vs arc {guard_speedup_vs_arc:.2}x",
            reads_per_sec / 1e6,
            opt.hits,
            opt.guard_hits,
            opt.retries,
            opt.fallbacks
        );
        ContendedRow {
            workers: WORKERS,
            pages,
            reads,
            wall_ms,
            reads_per_sec,
            opt,
            opt_hit_share,
            guard_hit_share,
            locked_wall_ms,
            guard_wall_ms,
            opt_speedup_vs_locked,
            guard_speedup_vs_arc,
        }
    };

    // --- Engine comparison (in-memory) ------------------------------------
    // Both engines answer the *identical* unbuffered filter-step join (no
    // page cache, no refinement, same datasets): the R-tree engine's
    // synchronized traversal vs. the partition engine's uniform grid +
    // per-cell sweep. Per-row wall is the minimum over `reps` runs (same
    // noise rationale as the kernel micro-benchmark); the gated ratio is
    // rtree_wall / partition_wall at the highest thread count — > 1 means
    // the partition engine wins in memory, which is the Tsitsigkos et al.
    // result this bench reproduces.
    struct EngineRow {
        id: String,
        engine: &'static str,
        threads: usize,
        wall_ms: f64,
        pairs: usize,
        morsels: usize,
        steals: u64,
        replicated: u64,
        deduped: u64,
    }
    let engine_threads: &[usize] = if quick { &[1, 2] } else { &[1, 4] };
    let mut engine_rows: Vec<EngineRow> = Vec::new();
    for &threads in engine_threads {
        for engine in [JoinEngine::RTree, JoinEngine::Partition] {
            let mut cfg = NativeConfig::new(threads);
            cfg.refine = false;
            cfg.engine = engine;
            let mut wall_ms = f64::INFINITY;
            let mut last = None;
            for _ in 0..reps.max(1) {
                let res = run_join(&a, &b, &cfg);
                wall_ms = wall_ms.min(res.elapsed.as_secs_f64() * 1e3);
                last = Some(res);
            }
            let res = last.expect("reps >= 1");
            println!(
                "engine t={threads} {}: {:.1} ms, {} pairs, {} morsels, {} steals{}",
                engine.short(),
                wall_ms,
                res.pairs.len(),
                res.morsels,
                res.steals,
                if engine == JoinEngine::Partition {
                    format!(", {} replicated, {} deduped", res.replicated, res.deduped)
                } else {
                    String::new()
                }
            );
            engine_rows.push(EngineRow {
                id: format!("t{threads}_{}_mem", engine.short()),
                engine: engine.short(),
                threads,
                wall_ms,
                pairs: res.pairs.len(),
                morsels: res.morsels,
                steals: res.steals,
                replicated: res.replicated,
                deduped: res.deduped,
            });
        }
    }
    // Sanity: the engines must agree exactly on the filter-step output size.
    for pair in engine_rows.chunks(2) {
        if pair.len() == 2 && pair[0].pairs != pair[1].pairs {
            return Err(format!(
                "engine mismatch at t={}: rtree produced {} pairs, partition {}",
                pair[0].threads, pair[0].pairs, pair[1].pairs
            ));
        }
    }
    let top = *engine_threads.last().expect("non-empty");
    let find_wall = |rows: &[EngineRow], engine: &str, suffix: &str| {
        rows.iter()
            .find(|r| r.threads == top && r.engine == engine && r.id.ends_with(suffix))
            .map(|r| r.wall_ms)
            .expect("row exists")
    };
    let partition_vs_rtree_indexed =
        find_wall(&engine_rows, "rtree", "_mem") / find_wall(&engine_rows, "partition", "_mem");
    println!(
        "engines: pre-indexed, partition is {partition_vs_rtree_indexed:.2}x the rtree \
         engine (t={top}, >1 = partition faster)"
    );

    // --- Engine comparison (stream input) ---------------------------------
    // Neither side is indexed: the R-tree engine first has to *build* its
    // indexes (STR bulk load + freeze, the cheapest construction this
    // workspace has) before it can traverse, while the partition engine
    // plans its grid directly from the rectangle streams. This is the
    // comparison the partitioning literature makes — a one-off join where
    // no index pre-exists — and the config the gated
    // `partition_speedup_vs_rtree` ratio is computed from.
    {
        let items_a: Vec<(psj_geom::Rect, u64)> = m1.iter().map(|o| (o.mbr(), o.oid)).collect();
        let items_b: Vec<(psj_geom::Rect, u64)> = m2.iter().map(|o| (o.mbr(), o.oid)).collect();
        let ra: Vec<RectItem> = m1
            .iter()
            .map(|o| RectItem {
                mbr: o.mbr(),
                oid: o.oid,
            })
            .collect();
        let rb: Vec<RectItem> = m2
            .iter()
            .map(|o| RectItem {
                mbr: o.mbr(),
                oid: o.oid,
            })
            .collect();
        let mut cfg = NativeConfig::new(top);
        cfg.refine = false;
        let mut rt_wall = f64::INFINITY;
        let mut rt_last = None;
        for _ in 0..reps.max(1) {
            let t0 = Instant::now();
            let sa = PagedTree::freeze(&bulk_load_str(&items_a), |_| None);
            let sb = PagedTree::freeze(&bulk_load_str(&items_b), |_| None);
            let res = run_join(&sa, &sb, &cfg);
            rt_wall = rt_wall.min(t0.elapsed().as_secs_f64() * 1e3);
            rt_last = Some(res);
        }
        let rt_res = rt_last.expect("reps >= 1");
        let mut pt_wall = f64::INFINITY;
        let mut pt_last = None;
        for _ in 0..reps.max(1) {
            let res = psj_core::run_partition_join(
                psj_core::PartitionInput::Rects(&ra),
                psj_core::PartitionInput::Rects(&rb),
                &cfg,
            );
            pt_wall = pt_wall.min(res.elapsed.as_secs_f64() * 1e3);
            pt_last = Some(res);
        }
        let pt_res = pt_last.expect("reps >= 1");
        if rt_res.pairs.len() != pt_res.pairs.len() {
            return Err(format!(
                "engine mismatch on stream input: rtree produced {} pairs, partition {}",
                rt_res.pairs.len(),
                pt_res.pairs.len()
            ));
        }
        println!(
            "engine t={top} rtree (stream, index build included): {rt_wall:.1} ms, {} pairs",
            rt_res.pairs.len()
        );
        println!(
            "engine t={top} partition (stream): {pt_wall:.1} ms, {} pairs, \
             {} replicated, {} deduped",
            pt_res.pairs.len(),
            pt_res.replicated,
            pt_res.deduped
        );
        engine_rows.push(EngineRow {
            id: format!("t{top}_rtree_stream"),
            engine: "rtree",
            threads: top,
            wall_ms: rt_wall,
            pairs: rt_res.pairs.len(),
            morsels: rt_res.morsels,
            steals: rt_res.steals,
            replicated: 0,
            deduped: 0,
        });
        engine_rows.push(EngineRow {
            id: format!("t{top}_partition_stream"),
            engine: "partition",
            threads: top,
            wall_ms: pt_wall,
            pairs: pt_res.pairs.len(),
            morsels: pt_res.morsels,
            steals: pt_res.steals,
            replicated: pt_res.replicated,
            deduped: pt_res.deduped,
        });
    }
    let partition_vs_rtree = find_wall(&engine_rows, "rtree", "_stream")
        / find_wall(&engine_rows, "partition", "_stream");
    println!(
        "engines: on unindexed streams, partition is {partition_vs_rtree:.2}x the rtree \
         engine (t={top}, index build counted, >1 = partition faster)"
    );

    // --- Report -----------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"psj-bench-join-v2\",\n");
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"scale\": {scale},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"total_pages\": {total_pages},\n"));
    json.push_str("  \"kernel\": {\n");
    json.push_str(&format!("    \"node_pairs\": {},\n", stream.len()));
    json.push_str(&format!("    \"sweep_pairs\": {scalar_pairs},\n"));
    json.push_str(&format!("    \"reps\": {reps},\n"));
    json.push_str(&format!("    \"scalar_ns\": {scalar_ns},\n"));
    json.push_str(&format!("    \"soa_ns\": {soa_ns},\n"));
    json.push_str(&format!(
        "    \"scalar_pairs_per_sec\": {:.1},\n",
        scalar_pps
    ));
    json.push_str(&format!("    \"soa_pairs_per_sec\": {:.1},\n", soa_pps));
    json.push_str(&format!("    \"speedup\": {:.4}\n", kernel_speedup));
    json.push_str("  },\n");
    json.push_str("  \"contended\": {\n");
    json.push_str(&format!("    \"workers\": {},\n", contended.workers));
    json.push_str(&format!("    \"pages\": {},\n", contended.pages));
    json.push_str(&format!("    \"reads\": {},\n", contended.reads));
    json.push_str(&format!("    \"wall_ms\": {:.3},\n", contended.wall_ms));
    json.push_str(&format!(
        "    \"reads_per_sec\": {:.1},\n",
        contended.reads_per_sec
    ));
    json.push_str(&format!("    \"opt_hits\": {},\n", contended.opt.hits));
    json.push_str(&format!(
        "    \"opt_retries\": {},\n",
        contended.opt.retries
    ));
    json.push_str(&format!(
        "    \"opt_fallbacks\": {},\n",
        contended.opt.fallbacks
    ));
    json.push_str(&format!(
        "    \"guard_hits\": {},\n",
        contended.opt.guard_hits
    ));
    json.push_str(&format!(
        "    \"opt_hit_share\": {:.4},\n",
        contended.opt_hit_share
    ));
    json.push_str(&format!(
        "    \"guard_hit_share\": {:.4},\n",
        contended.guard_hit_share
    ));
    json.push_str(&format!(
        "    \"locked_wall_ms\": {:.3},\n",
        contended.locked_wall_ms
    ));
    json.push_str(&format!(
        "    \"guard_wall_ms\": {:.3},\n",
        contended.guard_wall_ms
    ));
    json.push_str(&format!(
        "    \"opt_speedup_vs_locked\": {:.4},\n",
        contended.opt_speedup_vs_locked
    ));
    json.push_str(&format!(
        "    \"guard_speedup_vs_arc\": {:.4}\n",
        contended.guard_speedup_vs_arc
    ));
    json.push_str("  },\n");
    json.push_str("  \"joins\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"threads\": {}, \"assignment\": \"{}\", \"org\": \"{}\", \
             \"wall_ms\": {:.3}, \"speedup_vs_t1\": {:.4}, \"wall_speedup_vs_t1\": {:.4}, \
             \"morsels\": {}, \"steals\": {}, \"pairs\": {}, \
             \"hits_local\": {}, \"hits_l1\": {}, \"hits_remote\": {}, \
             \"misses\": {}, \"evictions\": {}}}{}\n",
            r.id,
            r.threads,
            r.assignment,
            r.org,
            r.wall_ms,
            r.speedup_vs_t1,
            r.wall_speedup_vs_t1,
            r.morsels,
            r.steals,
            r.pairs,
            r.hits_local,
            r.hits_l1,
            r.hits_remote,
            r.misses,
            r.evictions,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"engines\": {\n");
    json.push_str("    \"rows\": [\n");
    for (i, r) in engine_rows.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"id\": \"{}\", \"engine\": \"{}\", \"threads\": {}, \
             \"wall_ms\": {:.3}, \"pairs\": {}, \"morsels\": {}, \"steals\": {}, \
             \"replicated\": {}, \"deduped\": {}}}{}\n",
            r.id,
            r.engine,
            r.threads,
            r.wall_ms,
            r.pairs,
            r.morsels,
            r.steals,
            r.replicated,
            r.deduped,
            if i + 1 < engine_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("    ],\n");
    json.push_str(&format!(
        "    \"partition_vs_rtree_preindexed\": {partition_vs_rtree_indexed:.4},\n"
    ));
    json.push_str(&format!(
        "    \"partition_speedup_vs_rtree\": {partition_vs_rtree:.4}\n"
    ));
    json.push_str("  }\n}\n");
    std::fs::write(out, &json).map_err(io_err)?;
    println!("wrote {out}");
    Ok(())
}

/// Scans `text` for `"key": <number>` and returns the number, searching
/// forward from `from`. Enough of a JSON reader for the reports this
/// binary writes itself (no external JSON dependency in this workspace).
fn json_number_after(text: &str, key: &str, from: usize) -> Option<(f64, usize)> {
    let needle = format!("\"{key}\":");
    let at = text[from..].find(&needle)? + from + needle.len();
    let rest = text[at..].trim_start();
    let off = at + (text[at..].len() - rest.len());
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse::<f64>().ok().map(|v| (v, off + end))
}

/// Extracts the per-join `id -> field` map from a bench-join report.
fn bench_row_field(text: &str, field: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while let Some(i) = text[pos..].find("\"id\": \"") {
        let start = pos + i + "\"id\": \"".len();
        let Some(len) = text[start..].find('"') else {
            break;
        };
        let id = text[start..start + len].to_string();
        let Some((v, next)) = json_number_after(text, field, start + len) else {
            break;
        };
        out.push((id, v));
        pos = next;
    }
    out
}

/// `psj bench-check` — compare a fresh bench-join report against the
/// committed baseline on machine-independent ratios: the kernel's SoA/scalar
/// speedup and each matrix row's *scheduled* speedup vs. its own t=1 run.
/// Absolute wall-clock numbers are reported but never compared, so the check
/// is stable across machines. Exits nonzero if the candidate falls more than
/// `--tolerance` (default 0.25) below the baseline on any compared ratio,
/// below any `--min id=floor` absolute floor, or (with `--require-steals`)
/// if no candidate row exercised the steal path.
pub fn bench_check(args: &Args) -> CmdResult {
    let mut failures = Vec::new();
    // Cluster scaling gate — read from bench-cluster's own report, so it
    // can run standalone (no --baseline/--candidate join reports needed).
    let cluster_checked = check_cluster_scaling(args, &mut failures)?;
    if cluster_checked && args.get("baseline").is_none() && args.get("candidate").is_none() {
        return if failures.is_empty() {
            println!("bench-check: ok (cluster scaling only)");
            Ok(())
        } else {
            Err(format!("bench-check failed:\n  {}", failures.join("\n  ")))
        };
    }
    let baseline_path = args.require("baseline")?;
    let candidate_path = args.require("candidate")?;
    let tolerance: f64 = args.parse_or("tolerance", 0.25)?;
    let require_steals = args.flag("require-steals");
    let mut min_floors: Vec<(String, f64)> = Vec::new();
    if let Some(spec) = args.get("min") {
        for part in spec.split(',').filter(|s| !s.is_empty()) {
            let (id, v) = part
                .split_once('=')
                .ok_or_else(|| format!("--min entry '{part}' is not id=floor"))?;
            let floor: f64 = v
                .parse()
                .map_err(|_| format!("--min floor '{v}' is not a number"))?;
            min_floors.push((id.to_string(), floor));
        }
    }
    let baseline = std::fs::read_to_string(Path::new(baseline_path))
        .map_err(|e| format!("{baseline_path}: {e}"))?;
    let candidate = std::fs::read_to_string(Path::new(candidate_path))
        .map_err(|e| format!("{candidate_path}: {e}"))?;

    let kernel_at = |t: &str| t.find("\"kernel\"").unwrap_or(0);
    let base_kernel = json_number_after(&baseline, "speedup", kernel_at(&baseline))
        .map(|(v, _)| v)
        .ok_or_else(|| format!("{baseline_path}: no kernel speedup found"))?;
    let cand_kernel = json_number_after(&candidate, "speedup", kernel_at(&candidate))
        .map(|(v, _)| v)
        .ok_or_else(|| format!("{candidate_path}: no kernel speedup found"))?;
    let floor = base_kernel * (1.0 - tolerance);
    println!(
        "kernel speedup: baseline {base_kernel:.3}x, candidate {cand_kernel:.3}x \
         (floor {floor:.3}x)"
    );
    if cand_kernel < floor {
        failures.push(format!(
            "kernel speedup regressed: {cand_kernel:.3}x < {floor:.3}x \
             (baseline {base_kernel:.3}x - {:.0}%)",
            tolerance * 100.0
        ));
    }

    let base_rows = bench_row_field(&baseline, "speedup_vs_t1");
    let cand_rows = bench_row_field(&candidate, "speedup_vs_t1");
    for (id, cand_v) in &cand_rows {
        let Some((_, base_v)) = base_rows.iter().find(|(b, _)| b == id) else {
            println!("join {id}: not in baseline, skipped");
            continue;
        };
        let floor = base_v * (1.0 - tolerance);
        let verdict = if *cand_v < floor { "REGRESSED" } else { "ok" };
        println!(
            "join {id}: baseline {base_v:.3}x, candidate {cand_v:.3}x \
             (floor {floor:.3}x) {verdict}"
        );
        if *cand_v < floor {
            failures.push(format!(
                "join {id} speedup_vs_t1 regressed: {cand_v:.3}x < {floor:.3}x"
            ));
        }
    }
    if cand_rows.is_empty() {
        failures.push(format!("{candidate_path}: no join rows found"));
    }

    // Absolute floors on the scheduled speedup — machine-independent, so a
    // hard target like the paper's 1.6x at 4 threads can be gated directly.
    for (id, floor) in &min_floors {
        match cand_rows.iter().find(|(c, _)| c == id) {
            Some((_, v)) if v >= floor => {
                println!("join {id}: {v:.3}x meets absolute floor {floor:.3}x");
            }
            Some((_, v)) => failures.push(format!(
                "join {id} below absolute floor: {v:.3}x < {floor:.3}x"
            )),
            None => failures.push(format!("--min {id}: row not in candidate report")),
        }
    }

    // Absolute floor on the in-memory engine comparison: the candidate's
    // partition/rtree wall ratio must meet it. Wall ratios on the same
    // machine in the same process are machine-independent enough to gate.
    if let Some(floor) = args.get("min-partition") {
        let floor: f64 = floor
            .parse()
            .map_err(|_| format!("--min-partition '{floor}' is not a number"))?;
        match json_number_after(&candidate, "partition_speedup_vs_rtree", 0).map(|(v, _)| v) {
            Some(v) if v >= floor => {
                println!("engines: partition {v:.3}x vs rtree meets floor {floor:.3}x");
            }
            Some(v) => failures.push(format!(
                "partition engine below floor: {v:.3}x vs rtree < {floor:.3}x"
            )),
            None => failures.push(format!(
                "{candidate_path}: no partition_speedup_vs_rtree in report \
                 (re-run bench-join)"
            )),
        }
    }

    // Absolute floor on the contended-read optimistic-hit share: which code
    // path served resident-page hits is a pure count ratio, fully
    // machine-independent — on a healthy seqlock read path it is ~1.0.
    if let Some(floor) = args.get("min-opt-share") {
        let floor: f64 = floor
            .parse()
            .map_err(|_| format!("--min-opt-share '{floor}' is not a number"))?;
        match json_number_after(&candidate, "opt_hit_share", 0).map(|(v, _)| v) {
            Some(v) if v >= floor => {
                println!("contended: optimistic hit share {v:.3} meets floor {floor:.3}");
            }
            Some(v) => failures.push(format!(
                "contended optimistic hit share below floor: {v:.3} < {floor:.3}"
            )),
            None => failures.push(format!(
                "{candidate_path}: no opt_hit_share in report (re-run bench-join)"
            )),
        }
    }

    // Absolute floors on the contended-read wall ratios. Both are
    // same-process, same-machine ratios of identical read sequences, so
    // they gate the *relative* cost of the read paths, not the machine:
    // `min-opt-speedup` requires the seqlock optimistic path to beat the
    // all-mutex pessimistic path, `min-guard-speedup` requires the
    // borrowing guard read to beat the Arc-clone optimistic read.
    for (flag, key, what) in [
        (
            "min-opt-speedup",
            "opt_speedup_vs_locked",
            "optimistic vs locked",
        ),
        ("min-guard-speedup", "guard_speedup_vs_arc", "guard vs arc"),
    ] {
        if let Some(floor) = args.get(flag) {
            let floor: f64 = floor
                .parse()
                .map_err(|_| format!("--{flag} '{floor}' is not a number"))?;
            match json_number_after(&candidate, key, 0).map(|(v, _)| v) {
                Some(v) if v >= floor => {
                    println!("contended: {what} {v:.3}x meets floor {floor:.3}x");
                }
                Some(v) => failures.push(format!(
                    "contended {what} below floor: {v:.3}x < {floor:.3}x"
                )),
                None => failures.push(format!(
                    "{candidate_path}: no {key} in report (re-run bench-join)"
                )),
            }
        }
    }

    if require_steals {
        let steal_rows = bench_row_field(&candidate, "steals");
        let total: f64 = steal_rows.iter().map(|(_, v)| v).sum();
        println!(
            "steals: {total:.0} across {} candidate rows",
            steal_rows.len()
        );
        if steal_rows.is_empty() || total <= 0.0 {
            failures
                .push("--require-steals: no candidate row exercised the steal path".to_string());
        }
    }

    if failures.is_empty() {
        println!("bench-check: ok ({} rows compared)", cand_rows.len());
        Ok(())
    } else {
        Err(format!("bench-check failed:\n  {}", failures.join("\n  ")))
    }
}

/// The `--min-cluster-scaling` gate: reads `psj bench-cluster`'s report
/// (default `results/cluster_baseline.json`, override with `--cluster`)
/// and requires the 4-shard vs 1-shard throughput ratio to meet the
/// floor. Returns whether the gate was requested at all.
fn check_cluster_scaling(args: &Args, failures: &mut Vec<String>) -> Result<bool, String> {
    let Some(floor) = args.get("min-cluster-scaling") else {
        return Ok(false);
    };
    let floor: f64 = floor
        .parse()
        .map_err(|_| format!("--min-cluster-scaling '{floor}' is not a number"))?;
    let path = args
        .get("cluster")
        .unwrap_or("results/cluster_baseline.json");
    let text = std::fs::read_to_string(Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
    match json_number_after(&text, "cluster_scaling_4v1", 0).map(|(v, _)| v) {
        Some(v) if v >= floor => {
            println!("cluster: 4-shard vs 1-shard throughput {v:.3}x meets floor {floor:.3}x");
        }
        Some(v) => failures.push(format!(
            "cluster scaling below floor: {v:.3}x < {floor:.3}x"
        )),
        None => failures.push(format!(
            "{path}: no cluster_scaling_4v1 in report (re-run bench-cluster)"
        )),
    }
    Ok(true)
}
