//! The CLI subcommands.

use crate::args::Args;
use psj_core::{run_native_join, run_sim_join, BufferConfig, BufferOrg, NativeConfig, SimConfig};
use psj_datagen::io::{load_map, save_map};
use psj_datagen::Scenario;
use psj_rtree::{bulk::bulk_load_str, PagedTree, RTree};
use psj_serve::{loadgen, LoadConfig, ServeConfig, Server};
use std::collections::HashMap;
use std::path::Path;
use std::time::Instant;

/// Top-level usage text.
pub const USAGE: &str = "\
psj — parallel spatial joins on R*-trees

commands:
  generate --scale <f> --seed <n> --out1 <map> --out2 <map>
  build    --map <map> --out <tree> [--attrs <bytes>] [--str|--hilbert]
  stats    --tree <tree>
  join     --tree1 <tree> --tree2 <tree> [--threads <n>] [--no-refine]
           [--cache <pages>] [--cache-org local|global] [--cache-shards <n>]
  simulate --tree1 <tree> --tree2 <tree> [--procs <n>] [--disks <n>]
           [--buffer <pages>] [--variant lsr|gsrr|gd|best]
  serve    --trees <tree>[,<tree>...] [--addr 127.0.0.1:7878] [--workers <n>]
           [--queue-bound <n>] [--batch-window-us <us>] [--max-batch <n>]
           [--cache <pages>] [--cache-shards <n>] [--join-threads <n>]
  bench-serve --addr <host:port> [--clients <n>] [--requests <n>] [--seed <n>]
           [--window-frac <f>] [--nearest-frac <f>] [--deadline-ms <n>]
           [--k <n>] [--window-extent <f>] [--out <file.json>] [--shutdown]
  help

options may be written --key value or --key=value";

type CmdResult = Result<(), String>;

fn io_err<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}

/// `psj generate` — write a synthetic TIGER-like scenario to two map files.
pub fn generate(args: &Args) -> CmdResult {
    let scale: f64 = args.parse_or("scale", 0.1)?;
    let seed: u64 = args.parse_or("seed", 1996)?;
    let out1 = args.require("out1")?;
    let out2 = args.require("out2")?;
    let scenario = if (scale - 1.0).abs() < 1e-12 {
        Scenario::paper(seed)
    } else {
        Scenario::scaled(seed, scale)
    };
    let t0 = Instant::now();
    let (m1, m2) = scenario.generate();
    save_map(&m1, Path::new(out1)).map_err(io_err)?;
    save_map(&m2, Path::new(out2)).map_err(io_err)?;
    println!(
        "wrote {} objects to {out1} and {} objects to {out2} ({:.2?})",
        m1.len(),
        m2.len(),
        t0.elapsed()
    );
    Ok(())
}

/// `psj build` — index a map file into a persisted R*-tree.
pub fn build(args: &Args) -> CmdResult {
    let map_path = args.require("map")?;
    let out = args.require("out")?;
    let attrs: u64 = args.parse_or("attrs", 1365)?;
    let objects = load_map(Path::new(map_path)).map_err(io_err)?;
    let t0 = Instant::now();
    let tree = if args.flag("str") {
        let items: Vec<(psj_geom::Rect, u64)> = objects.iter().map(|o| (o.mbr(), o.oid)).collect();
        bulk_load_str(&items)
    } else if args.flag("hilbert") {
        let items: Vec<(psj_geom::Rect, u64)> = objects.iter().map(|o| (o.mbr(), o.oid)).collect();
        psj_rtree::hilbert::bulk_load_hilbert(&items)
    } else {
        let mut t = RTree::new();
        for o in &objects {
            t.insert(o.mbr(), o.oid);
        }
        t
    };
    let geoms: HashMap<u64, psj_geom::Polyline> =
        objects.iter().map(|o| (o.oid, o.geom.clone())).collect();
    let paged = PagedTree::freeze_with_attrs(&tree, |oid| geoms.get(&oid).cloned(), attrs);
    paged.save_to(Path::new(out)).map_err(io_err)?;
    println!(
        "indexed {} objects into {} pages (height {}) in {:.2?} -> {out}",
        paged.len(),
        paged.num_pages(),
        paged.height(),
        t0.elapsed()
    );
    Ok(())
}

/// `psj stats` — print a tree's Table-1 statistics.
pub fn stats(args: &Args) -> CmdResult {
    let tree = PagedTree::load_from(Path::new(args.require("tree")?)).map_err(io_err)?;
    println!("{}", tree.stats());
    Ok(())
}

/// `psj join` — native multithreaded join of two persisted trees.
pub fn join(args: &Args) -> CmdResult {
    let a = PagedTree::load_from(Path::new(args.require("tree1")?)).map_err(io_err)?;
    let b = PagedTree::load_from(Path::new(args.require("tree2")?)).map_err(io_err)?;
    let threads: usize = args.parse_or(
        "threads",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4),
    )?;
    let mut cfg = NativeConfig::new(threads);
    cfg.refine = !args.flag("no-refine");
    if let Some(pages) = args.get("cache") {
        let capacity_pages: usize = pages
            .parse()
            .map_err(|_| format!("invalid value for --cache: {pages}"))?;
        let org = match args.get("cache-org").unwrap_or("global") {
            "local" => BufferOrg::Local,
            "global" => BufferOrg::Global,
            other => return Err(format!("unknown cache org: {other} (use local|global)")),
        };
        let mut buffer = BufferConfig::global(capacity_pages);
        buffer.org = org;
        buffer.shards = args.parse_or("cache-shards", buffer.shards)?;
        cfg.buffer = Some(buffer);
    }
    let res = run_native_join(&a, &b, &cfg);
    println!("threads:            {threads}");
    println!("tasks:              {}", res.tasks);
    println!("node pairs:         {}", res.node_pairs);
    println!("filter candidates:  {}", res.candidates);
    println!(
        "{} {}",
        if cfg.refine {
            "exact results:     "
        } else {
            "candidate results: "
        },
        res.pairs.len()
    );
    println!("steals:             {}", res.steals);
    if let Some(stats) = &res.buffer {
        let org = match cfg.buffer.as_ref().map(|b| b.org) {
            Some(BufferOrg::Local) => "local",
            _ => "global",
        };
        println!(
            "page cache ({org}):  {} requests, {:.1}% hit ({} local / {} remote / {} in-flight), \
             {} misses, {} evictions",
            stats.requests(),
            100.0 * stats.hit_ratio(),
            stats.hits_local,
            stats.hits_remote,
            stats.hits_in_flight,
            stats.misses,
            stats.evictions
        );
    }
    println!("wall time:          {:.3?}", res.elapsed);
    Ok(())
}

/// `psj serve` — run the query service until a client sends Shutdown.
pub fn serve(args: &Args) -> CmdResult {
    let tree_list = args.require("trees")?;
    let mut trees = Vec::new();
    for path in tree_list.split(',').filter(|s| !s.is_empty()) {
        let t = PagedTree::load_from(Path::new(path)).map_err(io_err)?;
        println!(
            "loaded {path}: {} objects, {} pages, height {}",
            t.len(),
            t.num_pages(),
            t.height()
        );
        trees.push(std::sync::Arc::new(t));
    }
    let cfg = ServeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
        workers: args.parse_or(
            "workers",
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
        )?,
        queue_bound: args.parse_or("queue-bound", 256)?,
        batch_window: std::time::Duration::from_micros(args.parse_or("batch-window-us", 2_000u64)?),
        max_batch: args.parse_or("max-batch", 32)?,
        cache_pages: args.parse_or("cache", 4096)?,
        cache_shards: args.parse_or("cache-shards", 16)?,
        join_threads: args.parse_or("join-threads", 4)?,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, trees).map_err(io_err)?;
    println!(
        "serving on {} (send a Shutdown request to stop)",
        server.local_addr()
    );
    let report = server.wait();
    println!("--- server report ---\n{report}");
    Ok(())
}

/// `psj bench-serve` — closed-loop load generator against a running server.
pub fn bench_serve(args: &Args) -> CmdResult {
    let addr_str = args.require("addr")?;
    let addr: std::net::SocketAddr = addr_str
        .parse()
        .map_err(|_| format!("invalid address: {addr_str}"))?;
    let cfg = LoadConfig {
        addr,
        clients: args.parse_or("clients", 4)?,
        requests_per_client: args.parse_or("requests", 250)?,
        seed: args.parse_or("seed", 42)?,
        window_frac: args.parse_or("window-frac", 0.7)?,
        nearest_frac: args.parse_or("nearest-frac", 0.3)?,
        deadline_ms: args.parse_or("deadline-ms", 0)?,
        k: args.parse_or("k", 10)?,
        window_extent: args.parse_or("window-extent", 0.05)?,
    };
    if cfg.window_frac < 0.0 || cfg.nearest_frac < 0.0 || cfg.window_frac + cfg.nearest_frac > 1.0 {
        return Err("window-frac and nearest-frac must be non-negative and sum to <= 1".into());
    }
    let report = loadgen::run(&cfg).map_err(io_err)?;
    println!(
        "{} offered, {} completed, {} shed, {} timed out, {} errors in {:.3} s",
        report.offered,
        report.completed,
        report.shed,
        report.timeouts,
        report.errors,
        report.elapsed_s
    );
    println!(
        "throughput: {:.1} req/s; client latency p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms",
        report.throughput_rps, report.p50_ms, report.p95_ms, report.p99_ms
    );
    if let Some(s) = &report.server {
        println!("--- server stats ---\n{s}");
    }
    if let Some(out) = args.get("out") {
        if let Some(dir) = Path::new(out).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(io_err)?;
            }
        }
        std::fs::write(out, report.to_json(&cfg)).map_err(io_err)?;
        println!("wrote {out}");
    }
    if args.flag("shutdown") {
        let mut c = psj_serve::Client::connect(addr).map_err(io_err)?;
        c.shutdown().map_err(|e| e.to_string())?;
        println!("server acknowledged shutdown");
    }
    Ok(())
}

/// `psj simulate` — run the KSR1-style simulated platform.
pub fn simulate(args: &Args) -> CmdResult {
    let a = PagedTree::load_from(Path::new(args.require("tree1")?)).map_err(io_err)?;
    let b = PagedTree::load_from(Path::new(args.require("tree2")?)).map_err(io_err)?;
    let procs: usize = args.parse_or("procs", 8)?;
    let disks: usize = args.parse_or("disks", procs)?;
    let buffer: usize = args.parse_or("buffer", 100 * procs)?;
    let variant = args.get("variant").unwrap_or("best");
    let cfg = match variant {
        "lsr" => SimConfig::lsr(procs, disks, buffer),
        "gsrr" => SimConfig::gsrr(procs, disks, buffer),
        "gd" => SimConfig::gd(procs, disks, buffer),
        "best" => SimConfig::best(procs, disks, buffer),
        other => return Err(format!("unknown variant: {other} (use lsr|gsrr|gd|best)")),
    };
    let m = run_sim_join(&a, &b, &cfg).metrics;
    println!("variant:            {variant}");
    println!("processors/disks:   {}/{}", m.num_procs, m.num_disks);
    println!("tasks:              {}", m.tasks);
    println!("response time:      {:.1} s", m.response_secs());
    println!(
        "proc finish:        min {:.1} / avg {:.1} / max {:.1} s",
        m.min_finish_secs(),
        m.avg_finish_secs(),
        m.max_finish_secs()
    );
    println!("disk accesses:      {}", m.disk_accesses);
    println!("  directory pages:  {}", m.dir_page_reads);
    println!("  data pages:       {}", m.data_page_reads);
    println!("buffer hit ratio:   {:.1} %", m.buffer.hit_ratio() * 100.0);
    println!("path buffer hits:   {}", m.buffer.hits_path);
    println!("candidates:         {}", m.candidates);
    println!("reassignments:      {}", m.reassignments);
    println!("total busy time:    {:.1} s", m.total_busy_secs());
    Ok(())
}
