//! The CLI subcommands.

use crate::args::Args;
use psj_core::{
    run_sim_join, try_run_native_join, BufferConfig, BufferOrg, NativeConfig, NativeError,
    RunControl, SimConfig, TaskOrigin,
};
use psj_datagen::io::{load_map, save_map};
use psj_datagen::Scenario;
use psj_obs::TraceSink;
use psj_rtree::{bulk::bulk_load_str, fsck_file, PagedTree, RTree};
use psj_serve::{loadgen, Client, ClientError, LoadConfig, Response, ServeConfig, Server};
use psj_store::{FaultPlan, RetryPolicy};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Top-level usage text.
pub const USAGE: &str = "\
psj — parallel spatial joins on R*-trees

commands:
  generate --scale <f> --seed <n> --out1 <map> --out2 <map>
  build    --map <map> --out <tree> [--attrs <bytes>] [--str|--hilbert]
  stats    --tree <tree>
  join     --tree1 <tree> --tree2 <tree> [--threads <n>] [--no-refine]
           [--cache <pages>] [--cache-org local|global] [--cache-shards <n>]
           [--inject-faults <spec>] [--retry-attempts <n>]
           [--trace <file.jsonl>] [--tasks] — --trace writes a Perfetto/
           chrome://tracing-loadable JSONL trace; --tasks prints per-task
           attribution (pages, hits, steals, wall time)
  fsck     <tree>  (or --tree <tree>) — prints a JSON integrity report,
           exits nonzero if the index is damaged
  simulate --tree1 <tree> --tree2 <tree> [--procs <n>] [--disks <n>]
           [--buffer <pages>] [--variant lsr|gsrr|gd|best]
  serve    --trees <tree>[,<tree>...] [--addr 127.0.0.1:7878] [--workers <n>]
           [--queue-bound <n>] [--batch-window-us <us>] [--max-batch <n>]
           [--cache <pages>] [--cache-shards <n>] [--join-threads <n>]
           [--lenient] [--inject-faults <spec>] [--retry-attempts <n>]
           [--trace <file.jsonl>] — --trace writes the trace at shutdown
  query    --addr <host:port> [--tree <n>] (--window xl,yl,xu,yu |
           --nearest x,y [--k <n>] | --join-with <n> | --stats | --shutdown)
  metrics  --addr <host:port> — scrape Prometheus-text metrics from a
           running server
  trace-check <file.jsonl>  (or --file <file.jsonl>) — validate a trace
           file: every line parses, spans nest or are disjoint per thread
  bench-serve --addr <host:port> [--clients <n>] [--requests <n>] [--seed <n>]
           [--window-frac <f>] [--nearest-frac <f>] [--deadline-ms <n>]
           [--k <n>] [--window-extent <f>] [--out <file.json>] [--shutdown]
  help

options may be written --key value or --key=value

fault spec grammar (comma-separated key=value):
  seed=<u64> transient=<p> burst=<n> flip=<p> torn=<p> latency-us=<n> latency-p=<p>
  e.g. --inject-faults seed=42,transient=0.2,burst=2,flip=0.01";

type CmdResult = Result<(), String>;

fn io_err<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}

/// `psj generate` — write a synthetic TIGER-like scenario to two map files.
pub fn generate(args: &Args) -> CmdResult {
    let scale: f64 = args.parse_or("scale", 0.1)?;
    let seed: u64 = args.parse_or("seed", 1996)?;
    let out1 = args.require("out1")?;
    let out2 = args.require("out2")?;
    let scenario = if (scale - 1.0).abs() < 1e-12 {
        Scenario::paper(seed)
    } else {
        Scenario::scaled(seed, scale)
    };
    let t0 = Instant::now();
    let (m1, m2) = scenario.generate();
    save_map(&m1, Path::new(out1)).map_err(io_err)?;
    save_map(&m2, Path::new(out2)).map_err(io_err)?;
    println!(
        "wrote {} objects to {out1} and {} objects to {out2} ({:.2?})",
        m1.len(),
        m2.len(),
        t0.elapsed()
    );
    Ok(())
}

/// `psj build` — index a map file into a persisted R*-tree.
pub fn build(args: &Args) -> CmdResult {
    let map_path = args.require("map")?;
    let out = args.require("out")?;
    let attrs: u64 = args.parse_or("attrs", 1365)?;
    let objects = load_map(Path::new(map_path)).map_err(io_err)?;
    let t0 = Instant::now();
    let tree = if args.flag("str") {
        let items: Vec<(psj_geom::Rect, u64)> = objects.iter().map(|o| (o.mbr(), o.oid)).collect();
        bulk_load_str(&items)
    } else if args.flag("hilbert") {
        let items: Vec<(psj_geom::Rect, u64)> = objects.iter().map(|o| (o.mbr(), o.oid)).collect();
        psj_rtree::hilbert::bulk_load_hilbert(&items)
    } else {
        let mut t = RTree::new();
        for o in &objects {
            t.insert(o.mbr(), o.oid);
        }
        t
    };
    let geoms: HashMap<u64, psj_geom::Polyline> =
        objects.iter().map(|o| (o.oid, o.geom.clone())).collect();
    let paged = PagedTree::freeze_with_attrs(&tree, |oid| geoms.get(&oid).cloned(), attrs);
    paged.save_to(Path::new(out)).map_err(io_err)?;
    println!(
        "indexed {} objects into {} pages (height {}) in {:.2?} -> {out}",
        paged.len(),
        paged.num_pages(),
        paged.height(),
        t0.elapsed()
    );
    Ok(())
}

/// `psj stats` — print a tree's Table-1 statistics.
pub fn stats(args: &Args) -> CmdResult {
    let tree = PagedTree::load_from(Path::new(args.require("tree")?)).map_err(io_err)?;
    println!("{}", tree.stats());
    Ok(())
}

/// `psj join` — native multithreaded join of two persisted trees.
pub fn join(args: &Args) -> CmdResult {
    let a = PagedTree::load_from(Path::new(args.require("tree1")?)).map_err(io_err)?;
    let b = PagedTree::load_from(Path::new(args.require("tree2")?)).map_err(io_err)?;
    let threads: usize = args.parse_or(
        "threads",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4),
    )?;
    let mut cfg = NativeConfig::new(threads);
    cfg.refine = !args.flag("no-refine");
    if let Some(pages) = args.get("cache") {
        let capacity_pages: usize = pages
            .parse()
            .map_err(|_| format!("invalid value for --cache: {pages}"))?;
        let org = match args.get("cache-org").unwrap_or("global") {
            "local" => BufferOrg::Local,
            "global" => BufferOrg::Global,
            other => return Err(format!("unknown cache org: {other} (use local|global)")),
        };
        let mut buffer = BufferConfig::global(capacity_pages);
        buffer.org = org;
        buffer.shards = args.parse_or("cache-shards", buffer.shards)?;
        cfg.buffer = Some(buffer);
    }
    let fault = match args.get("inject-faults") {
        Some(spec) => Some(Arc::new(FaultPlan::parse(spec)?)),
        None => None,
    };
    let mut ctl = RunControl::default();
    if let Some(plan) = &fault {
        ctl = ctl.with_fault(Arc::clone(plan));
    }
    if let Some(n) = args.get("retry-attempts") {
        let attempts: u32 = n
            .parse()
            .map_err(|_| format!("invalid value for --retry-attempts: {n}"))?;
        ctl = ctl.with_retry(RetryPolicy::attempts(attempts));
    }
    let trace = args.get("trace").map(|_| TraceSink::new(1 << 22));
    if let Some(sink) = &trace {
        ctl = ctl.with_trace(Arc::clone(sink));
    }
    let res = match try_run_native_join(&a, &b, &cfg, &ctl) {
        Ok(res) => res,
        Err(NativeError::Storage(je)) => {
            if let Some(plan) = &fault {
                eprintln!("injected faults:    {}", plan.summary());
            }
            return Err(format!(
                "join aborted by storage failure ({} tasks failed): {}",
                je.failed_tasks, je.error
            ));
        }
        Err(NativeError::Cancelled) => unreachable!("no cancel token installed"),
    };
    println!("threads:            {threads}");
    println!("tasks:              {}", res.tasks);
    println!("node pairs:         {}", res.node_pairs);
    println!("filter candidates:  {}", res.candidates);
    println!(
        "{} {}",
        if cfg.refine {
            "exact results:     "
        } else {
            "candidate results: "
        },
        res.pairs.len()
    );
    println!("steals:             {}", res.steals);
    if let Some(stats) = &res.buffer {
        let org = match cfg.buffer.as_ref().map(|b| b.org) {
            Some(BufferOrg::Local) => "local",
            _ => "global",
        };
        println!(
            "page cache ({org}):  {} requests, {:.1}% hit ({} local / {} remote / {} in-flight), \
             {} misses, {} evictions",
            stats.requests(),
            100.0 * stats.hit_ratio(),
            stats.hits_local,
            stats.hits_remote,
            stats.hits_in_flight,
            stats.misses,
            stats.evictions
        );
    }
    if let Some(plan) = &fault {
        println!("injected faults:    {}", plan.summary());
        if let Some(stats) = &res.buffer {
            println!("page retries:       {}", stats.retries);
        }
    }
    if !res.task_traces.is_empty() {
        let (mut assigned, mut injector, mut stolen) = (0u64, 0u64, 0u64);
        for t in &res.task_traces {
            match t.origin {
                TaskOrigin::Assigned => assigned += 1,
                TaskOrigin::Injector => injector += 1,
                TaskOrigin::Steal => stolen += 1,
            }
        }
        println!(
            "task segments:      {} ({assigned} assigned / {injector} injector / {stolen} stolen)",
            res.task_traces.len()
        );
        if args.flag("tasks") {
            println!(
                "  {:<6} {:<8} {:>10} {:>10} {:>7} {:>7} {:>7} {:>7} {:>7}  wall",
                "worker", "origin", "node-prs", "cands", "pages", "hit-l", "hit-r", "miss", "retry"
            );
            for t in &res.task_traces {
                let origin = match t.origin {
                    TaskOrigin::Assigned => "assigned",
                    TaskOrigin::Injector => "injector",
                    TaskOrigin::Steal => "stolen",
                };
                println!(
                    "  {:<6} {:<8} {:>10} {:>10} {:>7} {:>7} {:>7} {:>7} {:>7}  {:.3?}",
                    t.worker,
                    origin,
                    t.node_pairs,
                    t.candidates,
                    t.pages,
                    t.hits_local,
                    t.hits_remote,
                    t.misses,
                    t.retries,
                    t.wall
                );
            }
        }
    }
    if let Some(sink) = &trace {
        let path = args.get("trace").expect("sink exists only with --trace");
        let lines = sink.write_to_file(Path::new(path)).map_err(io_err)?;
        println!(
            "trace:              {lines} events -> {path} ({} dropped)",
            sink.dropped()
        );
    }
    println!("wall time:          {:.3?}", res.elapsed);
    Ok(())
}

/// `psj fsck` — verify an index file and print a JSON integrity report.
pub fn fsck(args: &Args) -> CmdResult {
    let path = args.require("tree")?;
    let report = fsck_file(Path::new(path));
    println!("{}", report.to_json());
    if report.ok() {
        Ok(())
    } else {
        Err(format!("{path}: integrity check failed"))
    }
}

/// `psj serve` — run the query service until a client sends Shutdown.
pub fn serve(args: &Args) -> CmdResult {
    let tree_list = args.require("trees")?;
    let lenient = args.flag("lenient");
    let mut trees = Vec::new();
    for path in tree_list.split(',').filter(|s| !s.is_empty()) {
        let t = if lenient {
            let l = PagedTree::load_from_lenient(Path::new(path)).map_err(io_err)?;
            if !l.corrupt_pages.is_empty() {
                println!(
                    "loaded {path} LENIENT: {} corrupt pages poisoned \
                     (queries touching them return storage errors)",
                    l.corrupt_pages.len()
                );
            }
            l.tree
        } else {
            PagedTree::load_from(Path::new(path)).map_err(io_err)?
        };
        println!(
            "loaded {path}: {} objects, {} pages, height {}",
            t.len(),
            t.num_pages(),
            t.height()
        );
        trees.push(Arc::new(t));
    }
    let cfg = ServeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
        workers: args.parse_or(
            "workers",
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
        )?,
        queue_bound: args.parse_or("queue-bound", 256)?,
        batch_window: std::time::Duration::from_micros(args.parse_or("batch-window-us", 2_000u64)?),
        max_batch: args.parse_or("max-batch", 32)?,
        cache_pages: args.parse_or("cache", 4096)?,
        cache_shards: args.parse_or("cache-shards", 16)?,
        join_threads: args.parse_or("join-threads", 4)?,
        fault: match args.get("inject-faults") {
            Some(spec) => Some(Arc::new(FaultPlan::parse(spec)?)),
            None => None,
        },
        retry: RetryPolicy::attempts(args.parse_or("retry-attempts", 3)?),
        trace: args.get("trace").map(|_| TraceSink::new(1 << 22)),
        ..ServeConfig::default()
    };
    let trace = cfg.trace.clone();
    let server = Server::start(cfg, trees).map_err(io_err)?;
    println!(
        "serving on {} (send a Shutdown request to stop)",
        server.local_addr()
    );
    let report = server.wait();
    println!("--- server report ---\n{report}");
    if let Some(sink) = &trace {
        let path = args.get("trace").expect("sink exists only with --trace");
        let lines = sink.write_to_file(Path::new(path)).map_err(io_err)?;
        println!(
            "trace: {lines} events -> {path} ({} dropped)",
            sink.dropped()
        );
    }
    Ok(())
}

/// `psj metrics` — scrape the Prometheus text exposition from a running
/// server and print it. The counters are the same atomics the `--stats`
/// report reads, so the two views always agree.
pub fn metrics(args: &Args) -> CmdResult {
    let addr_str = args.require("addr")?;
    let addr: std::net::SocketAddr = addr_str
        .parse()
        .map_err(|_| format!("invalid address: {addr_str}"))?;
    let mut client =
        Client::connect_timeout(&addr, std::time::Duration::from_secs(30)).map_err(io_err)?;
    let text = client.metrics().map_err(client_err)?;
    print!("{text}");
    Ok(())
}

/// `psj trace-check` — validate a JSONL trace file written by
/// `join --trace` or `serve --trace`: every line must parse as a Chrome
/// trace event and span begin/end pairs must balance on every thread row.
/// Exits nonzero on a malformed trace.
pub fn trace_check(args: &Args) -> CmdResult {
    let path = args.require("file")?;
    let text = std::fs::read_to_string(Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
    let summary =
        psj_obs::validate_jsonl(&text).map_err(|e| format!("{path}: invalid trace: {e}"))?;
    println!(
        "{path}: ok — {} lines ({} spans, {} instants, {} metadata)",
        summary.lines, summary.spans, summary.instants, summary.meta
    );
    if summary.spans == 0 {
        return Err(format!("{path}: trace contains no spans"));
    }
    Ok(())
}

/// One comma-separated list of exactly `N` floats.
fn parse_floats<const N: usize>(key: &str, value: &str) -> Result<[f64; N], String> {
    let parts: Vec<f64> = value
        .split(',')
        .map(|s| s.trim().parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|_| format!("invalid --{key}: {value} (expected {N} comma-separated numbers)"))?;
    parts
        .try_into()
        .map_err(|_| format!("invalid --{key}: {value} (expected {N} comma-separated numbers)"))
}

/// Maps a non-payload server response to the CLI error string.
fn describe_response(r: Response) -> String {
    match r {
        Response::Storage { kind, msg } => format!("storage error ({kind}): {msg}"),
        Response::Overloaded => "server overloaded".into(),
        Response::DeadlineExceeded => "deadline exceeded".into(),
        Response::Error(msg) => format!("server error: {msg}"),
        other => format!("unexpected response: {other:?}"),
    }
}

fn client_err(e: ClientError) -> String {
    match e {
        ClientError::Unexpected(r) => describe_response(*r),
        ClientError::Io(e) => format!("transport error: {e}"),
    }
}

/// `psj query` — one-shot client: issue a single query (or stats/shutdown)
/// against a running server. Exits nonzero on any non-payload reply, with
/// storage errors reported as `storage error (corrupt|unavailable): ...`.
pub fn query(args: &Args) -> CmdResult {
    let addr_str = args.require("addr")?;
    let addr: std::net::SocketAddr = addr_str
        .parse()
        .map_err(|_| format!("invalid address: {addr_str}"))?;
    let mut client =
        Client::connect_timeout(&addr, std::time::Duration::from_secs(30)).map_err(io_err)?;
    if args.flag("shutdown") {
        client.shutdown().map_err(client_err)?;
        println!("server acknowledged shutdown");
        return Ok(());
    }
    if args.flag("stats") {
        let stats = client.stats().map_err(client_err)?;
        println!("{stats}");
        return Ok(());
    }
    let tree: u16 = args.parse_or("tree", 0u16)?;
    let deadline_ms: u32 = args.parse_or("deadline-ms", 0u32)?;
    if let Some(w) = args.get("window") {
        let [xl, yl, xu, yu] = parse_floats::<4>("window", w)?;
        let oids = client
            .window(tree, psj_geom::Rect::new(xl, yl, xu, yu), deadline_ms)
            .map_err(client_err)?;
        println!("{} entries", oids.len());
        for oid in oids {
            println!("{oid}");
        }
    } else if let Some(p) = args.get("nearest") {
        let [x, y] = parse_floats::<2>("nearest", p)?;
        let k: u32 = args.parse_or("k", 10u32)?;
        let nn = client
            .nearest(tree, x, y, k, deadline_ms)
            .map_err(client_err)?;
        println!("{} neighbors", nn.len());
        for (dist, oid) in nn {
            println!("{oid}\t{dist}");
        }
    } else if let Some(other) = args.get("join-with") {
        let other: u16 = other
            .parse()
            .map_err(|_| format!("invalid --join-with: {other}"))?;
        let pairs = client
            .join(tree, other, true, deadline_ms)
            .map_err(client_err)?;
        println!("{} pairs", pairs.len());
    } else {
        return Err(
            "query needs one of --window, --nearest, --join-with, --stats, --shutdown".into(),
        );
    }
    Ok(())
}

/// `psj bench-serve` — closed-loop load generator against a running server.
pub fn bench_serve(args: &Args) -> CmdResult {
    let addr_str = args.require("addr")?;
    let addr: std::net::SocketAddr = addr_str
        .parse()
        .map_err(|_| format!("invalid address: {addr_str}"))?;
    let cfg = LoadConfig {
        addr,
        clients: args.parse_or("clients", 4)?,
        requests_per_client: args.parse_or("requests", 250)?,
        seed: args.parse_or("seed", 42)?,
        window_frac: args.parse_or("window-frac", 0.7)?,
        nearest_frac: args.parse_or("nearest-frac", 0.3)?,
        deadline_ms: args.parse_or("deadline-ms", 0)?,
        k: args.parse_or("k", 10)?,
        window_extent: args.parse_or("window-extent", 0.05)?,
    };
    if cfg.window_frac < 0.0 || cfg.nearest_frac < 0.0 || cfg.window_frac + cfg.nearest_frac > 1.0 {
        return Err("window-frac and nearest-frac must be non-negative and sum to <= 1".into());
    }
    let report = loadgen::run(&cfg).map_err(io_err)?;
    println!(
        "{} offered, {} completed, {} shed, {} timed out, {} storage errors, {} errors in {:.3} s",
        report.offered,
        report.completed,
        report.shed,
        report.timeouts,
        report.storage,
        report.errors,
        report.elapsed_s
    );
    println!(
        "throughput: {:.1} req/s; client latency p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms",
        report.throughput_rps, report.p50_ms, report.p95_ms, report.p99_ms
    );
    if let Some(s) = &report.server {
        println!("--- server stats ---\n{s}");
    }
    if let Some(out) = args.get("out") {
        if let Some(dir) = Path::new(out).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(io_err)?;
            }
        }
        std::fs::write(out, report.to_json(&cfg)).map_err(io_err)?;
        println!("wrote {out}");
    }
    if args.flag("shutdown") {
        let mut c = psj_serve::Client::connect(addr).map_err(io_err)?;
        c.shutdown().map_err(|e| e.to_string())?;
        println!("server acknowledged shutdown");
    }
    Ok(())
}

/// `psj simulate` — run the KSR1-style simulated platform.
pub fn simulate(args: &Args) -> CmdResult {
    let a = PagedTree::load_from(Path::new(args.require("tree1")?)).map_err(io_err)?;
    let b = PagedTree::load_from(Path::new(args.require("tree2")?)).map_err(io_err)?;
    let procs: usize = args.parse_or("procs", 8)?;
    let disks: usize = args.parse_or("disks", procs)?;
    let buffer: usize = args.parse_or("buffer", 100 * procs)?;
    let variant = args.get("variant").unwrap_or("best");
    let cfg = match variant {
        "lsr" => SimConfig::lsr(procs, disks, buffer),
        "gsrr" => SimConfig::gsrr(procs, disks, buffer),
        "gd" => SimConfig::gd(procs, disks, buffer),
        "best" => SimConfig::best(procs, disks, buffer),
        other => return Err(format!("unknown variant: {other} (use lsr|gsrr|gd|best)")),
    };
    let m = run_sim_join(&a, &b, &cfg).metrics;
    println!("variant:            {variant}");
    println!("processors/disks:   {}/{}", m.num_procs, m.num_disks);
    println!("tasks:              {}", m.tasks);
    println!("response time:      {:.1} s", m.response_secs());
    println!(
        "proc finish:        min {:.1} / avg {:.1} / max {:.1} s",
        m.min_finish_secs(),
        m.avg_finish_secs(),
        m.max_finish_secs()
    );
    println!("disk accesses:      {}", m.disk_accesses);
    println!("  directory pages:  {}", m.dir_page_reads);
    println!("  data pages:       {}", m.data_page_reads);
    println!("buffer hit ratio:   {:.1} %", m.buffer.hit_ratio() * 100.0);
    println!("path buffer hits:   {}", m.buffer.hits_path);
    println!("candidates:         {}", m.candidates);
    println!("reassignments:      {}", m.reassignments);
    println!("total busy time:    {:.1} s", m.total_busy_secs());
    Ok(())
}
