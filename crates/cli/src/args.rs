//! Minimal `--key value` / `--key=value` / `--flag` argument parsing (the
//! workspace's dependency policy excludes argument-parsing crates).

use std::collections::HashMap;

/// Parsed command-line arguments: `--key value` options and bare `--flag`s.
#[derive(Debug, Default)]
pub struct Args {
    opts: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses the raw argument list. Accepted token shapes:
    ///
    /// * `--key=value` — one token, split at the first `=`;
    /// * `--key value` — `--key` consumes the next token as its value
    ///   unless that token also starts with `--`;
    /// * `--flag` — a `--` token not followed by a value.
    ///
    /// Any other token is a hard error (a stray positional is almost
    /// always a typo — e.g. `--scale0.5` or a forgotten `--`).
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut args = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let token = &argv[i];
            let Some(key) = token.strip_prefix("--") else {
                return Err(format!(
                    "unexpected positional argument: {token} (options are --key value or --key=value)"
                ));
            };
            if key.is_empty() {
                return Err("bare -- is not a valid option".into());
            }
            if let Some((k, v)) = key.split_once('=') {
                if k.is_empty() {
                    return Err(format!("malformed option: {token}"));
                }
                args.opts.insert(k.to_string(), v.to_string());
                i += 1;
            } else if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                args.opts.insert(key.to_string(), argv[i + 1].clone());
                i += 2;
            } else {
                args.flags.push(key.to_string());
                i += 1;
            }
        }
        Ok(args)
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.opts.get(key).map(String::as_str)
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Parsed option with a default.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {v}")),
        }
    }

    /// Whether a bare flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::parse(&s.iter().map(|x| x.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn parse_err(s: &[&str]) -> String {
        Args::parse(&s.iter().map(|x| x.to_string()).collect::<Vec<_>>()).unwrap_err()
    }

    #[test]
    fn options_and_flags() {
        let a = parse(&["--scale", "0.5", "--str", "--seed", "7"]);
        assert_eq!(a.get("scale"), Some("0.5"));
        assert_eq!(a.get("seed"), Some("7"));
        assert!(a.flag("str"));
        assert!(!a.flag("missing"));
    }

    #[test]
    fn equals_syntax() {
        let a = parse(&["--scale=0.5", "--out=a=b.bin", "--str"]);
        assert_eq!(a.get("scale"), Some("0.5"));
        // Only the first = splits; values may contain =.
        assert_eq!(a.get("out"), Some("a=b.bin"));
        assert!(a.flag("str"));
    }

    #[test]
    fn equals_with_empty_value() {
        let a = parse(&["--tag="]);
        assert_eq!(a.get("tag"), Some(""));
    }

    #[test]
    fn stray_positional_is_a_hard_error() {
        let e = parse_err(&["--scale", "0.5", "oops"]);
        assert!(e.contains("oops"), "{e}");
        assert!(parse_err(&["build", "--map", "x"]).contains("build"));
    }

    #[test]
    fn malformed_dashes_are_errors() {
        assert!(Args::parse(&["--".to_string()]).is_err());
        assert!(Args::parse(&["--=v".to_string()]).is_err());
    }

    #[test]
    fn parse_or_defaults() {
        let a = parse(&["--procs", "12"]);
        assert_eq!(a.parse_or("procs", 1usize).unwrap(), 12);
        assert_eq!(a.parse_or("disks", 4usize).unwrap(), 4);
        assert!(a.parse_or::<usize>("procs", 0).is_ok());
    }

    #[test]
    fn invalid_value_is_an_error() {
        let a = parse(&["--procs", "twelve"]);
        assert!(a.parse_or::<usize>("procs", 1).is_err());
    }

    #[test]
    fn require_reports_missing() {
        let a = parse(&[]);
        assert!(a.require("tree").is_err());
    }

    #[test]
    fn flag_followed_by_option() {
        let a = parse(&["--str", "--out", "x.bin"]);
        assert!(a.flag("str"));
        assert_eq!(a.get("out"), Some("x.bin"));
    }
}
