//! `psj` — command-line driver for the parallel spatial join library.
//!
//! ```text
//! psj generate --scale 0.1 --seed 1996 --out1 map1.psjm --out2 map2.psjm
//! psj build    --map map1.psjm --out tree1.psjt [--attrs 1365] [--str]
//! psj stats    --tree tree1.psjt
//! psj fsck     tree1.psjt
//! psj join     --tree1 tree1.psjt --tree2 tree2.psjt [--threads 8] [--no-refine]
//!              [--inject-faults seed=42,flip=0.01] [--retry-attempts 4]
//!              [--trace join.jsonl] [--tasks]
//! psj simulate --tree1 tree1.psjt --tree2 tree2.psjt [--procs 8] [--disks 8]
//!              [--buffer 800] [--variant lsr|gsrr|gd|best]
//! psj serve    --trees tree1.psjt,tree2.psjt [--addr 127.0.0.1:7878]
//!              [--workers 4] [--queue-bound 256] [--batch-window-us 2000]
//!              [--shard-id 0]
//! psj shard-plan --map1 map1.psjm --map2 map2.psjm --shards 3 --out cluster/
//!              [--host 127.0.0.1] [--base-port 7001]
//! psj cluster-serve --topology cluster/topology.txt [--addr 127.0.0.1:7900]
//! psj bench-cluster [--scale 0.05] [--seed 1996] [--clients 2]
//!              [--requests 150] [--out results/cluster_baseline.json]
//! psj query    --addr 127.0.0.1:7878 --tree 0 --window 0,0,10,10
//! psj metrics  --addr 127.0.0.1:7878
//! psj trace-check join.jsonl
//! psj bench-serve --addr 127.0.0.1:7878 [--clients 4] [--requests 250]
//!              [--out results/serve_baseline.json] [--shutdown]
//! psj bench-join [--scale 0.25] [--seed 1996] [--reps 7] [--quick]
//!              [--out BENCH_join.json]
//! psj bench-check --baseline BENCH_join.json --candidate /tmp/bench.json
//!              [--tolerance 0.25]
//! ```
//!
//! Options are accepted as `--key value` or `--key=value`; stray
//! positional tokens are an error.

mod args;
mod cluster;
mod commands;

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        eprintln!("{}", commands::USAGE);
        std::process::exit(2);
    }
    let cmd = argv.remove(0);
    // `psj fsck <index>` / `psj trace-check <trace>` are the natural
    // spellings; rewrite the bare path to the option the parser expects
    // (it rejects stray positionals).
    if cmd == "fsck" && argv.len() == 1 && !argv[0].starts_with("--") {
        argv[0] = format!("--tree={}", argv[0]);
    }
    if cmd == "trace-check" && argv.len() == 1 && !argv[0].starts_with("--") {
        argv[0] = format!("--file={}", argv[0]);
    }
    let parsed = match args::Args::parse(&argv) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}\n{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    let result = match cmd.as_str() {
        "generate" => commands::generate(&parsed),
        "build" => commands::build(&parsed),
        "stats" => commands::stats(&parsed),
        "join" => commands::join(&parsed),
        "fsck" => commands::fsck(&parsed),
        "simulate" => commands::simulate(&parsed),
        "serve" => commands::serve(&parsed),
        "shard-plan" => cluster::shard_plan(&parsed),
        "cluster-serve" => cluster::cluster_serve(&parsed),
        "bench-cluster" => cluster::bench_cluster(&parsed),
        "query" => commands::query(&parsed),
        "metrics" => commands::metrics(&parsed),
        "trace-check" => commands::trace_check(&parsed),
        "bench-serve" => commands::bench_serve(&parsed),
        "bench-join" => commands::bench_join(&parsed),
        "bench-check" => commands::bench_check(&parsed),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => {
            eprintln!("unknown command: {other}\n{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
