//! Binary serialization of generated maps.
//!
//! A deliberately simple, self-describing format (magic, version, count,
//! then per object: oid + vertex list), so scenario generation and
//! indexing can run as separate CLI steps.

use crate::MapObject;
use psj_geom::{Point, Polyline};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 6] = b"PSJM1\n";

/// Writes a map to `path`, overwriting any existing file.
pub fn save_map(objects: &[MapObject], path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(objects.len() as u64).to_le_bytes())?;
    for o in objects {
        w.write_all(&o.oid.to_le_bytes())?;
        let pts = o.geom.points();
        w.write_all(&(pts.len() as u32).to_le_bytes())?;
        for p in pts {
            w.write_all(&p.x.to_le_bytes())?;
            w.write_all(&p.y.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Reads a map previously written by [`save_map`].
pub fn load_map(path: &Path) -> io::Result<Vec<MapObject>> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 6];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a psj map file",
        ));
    }
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b8)?;
    let count = u64::from_le_bytes(b8) as usize;
    let mut out = Vec::with_capacity(count.min(1 << 24));
    for _ in 0..count {
        r.read_exact(&mut b8)?;
        let oid = u64::from_le_bytes(b8);
        let mut b4 = [0u8; 4];
        r.read_exact(&mut b4)?;
        let nv = u32::from_le_bytes(b4) as usize;
        if !(2..=1_000_000).contains(&nv) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "implausible vertex count",
            ));
        }
        let mut pts = Vec::with_capacity(nv);
        for _ in 0..nv {
            r.read_exact(&mut b8)?;
            let x = f64::from_le_bytes(b8);
            r.read_exact(&mut b8)?;
            let y = f64::from_le_bytes(b8);
            pts.push(Point::new(x, y));
        }
        out.push(MapObject {
            oid,
            geom: Polyline::new(pts),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("psj-map-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn roundtrip() {
        let (m1, _) = Scenario::scaled(5, 0.002).generate();
        let path = tmp("roundtrip");
        save_map(&m1, &path).unwrap();
        let loaded = load_map(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, m1);
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, b"garbage").unwrap();
        assert!(load_map(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_map_roundtrip() {
        let path = tmp("empty");
        save_map(&[], &path).unwrap();
        let loaded = load_map(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(loaded.is_empty());
    }
}
