//! Synthetic TIGER-like map generation.
//!
//! The paper evaluates on two 1990 TIGER/Line extracts of Californian
//! counties: *map 1* holds 131,443 street segments, *map 2* holds 127,312
//! objects representing administrative boundaries, rivers and railway
//! tracks. Those files are not redistributable here, so this crate generates
//! a synthetic scenario with the same *statistics* (see DESIGN.md §2):
//!
//! * TIGER decomposes linear features into short per-segment records — both
//!   maps therefore consist of very many small-MBR polylines;
//! * streets cluster inside towns; rivers meander across the map; railways
//!   connect towns; boundaries ring towns and follow a county grid —
//!   so the two relations are spatially correlated, which is what makes the
//!   spatial join selective but non-trivial;
//! * object counts, page layout and R\*-tree shape (height 3, ≈7 k data
//!   pages, ≈95 directory pages) match the paper's Table 1 at
//!   [`Scenario::paper`] scale.
//!
//! Everything is driven by a single `u64` seed through [`rand::rngs::StdRng`]
//! — identical seeds yield byte-identical maps on every platform.

#![warn(missing_docs)]

pub mod io;

use psj_geom::{Point, Polyline, Rect};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// One spatial object: an id and its exact polyline geometry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapObject {
    /// Object identifier, unique within its map.
    pub oid: u64,
    /// Exact geometry.
    pub geom: Polyline,
}

impl MapObject {
    /// The object's MBR.
    pub fn mbr(&self) -> Rect {
        self.geom.mbr()
    }
}

/// Extent of the paper-scale synthetic world in both axes (kilometres).
/// Scaled-down scenarios shrink the world proportionally (area ∝ object
/// count) so that spatial density — and with it join selectivity per object —
/// stays paper-like at every scale.
pub const WORLD: f64 = 100.0;

/// Configuration of a generated scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// RNG seed; equal seeds give identical scenarios.
    pub seed: u64,
    /// Number of street-segment objects in map 1.
    pub map1_objects: usize,
    /// Number of boundary/river/railway segment objects in map 2.
    pub map2_objects: usize,
    /// Number of towns streets cluster around.
    pub towns: usize,
    /// Extent of the (square) world in kilometres.
    pub world: f64,
}

impl Scenario {
    /// The paper-scale scenario: Table 1 object counts.
    pub fn paper(seed: u64) -> Self {
        Scenario {
            seed,
            map1_objects: 131_443,
            map2_objects: 127_312,
            towns: 180,
            world: WORLD,
        }
    }

    /// A linearly scaled-down scenario for tests and examples.
    /// `scale = 1.0` equals [`Scenario::paper`].
    pub fn scaled(seed: u64, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        Scenario {
            seed,
            map1_objects: ((131_443.0 * scale) as usize).max(16),
            map2_objects: ((127_312.0 * scale) as usize).max(16),
            towns: ((180.0 * scale) as usize).max(3),
            world: (WORLD * scale.sqrt()).max(4.0),
        }
    }

    /// Generates both maps. Map 1 and map 2 share the town layout, so the
    /// relations are spatially correlated as in the real TIGER data.
    pub fn generate(&self) -> (Vec<MapObject>, Vec<MapObject>) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let w = self.world;
        let towns = gen_towns(&mut rng, self.towns, w);
        let map1 = gen_streets(&mut rng, &towns, self.map1_objects, w);
        let map2 = gen_features(&mut rng, &towns, self.map2_objects, w);
        (map1, map2)
    }
}

/// A town: center plus spread (σ of its street cloud) and weight.
#[derive(Debug, Clone, Copy)]
struct Town {
    center: Point,
    sigma: f64,
    weight: f64,
}

fn gen_towns(rng: &mut StdRng, n: usize, world: f64) -> Vec<Town> {
    let mut towns = Vec::with_capacity(n);
    let mut total = 0.0;
    for i in 0..n {
        // Zipf-ish weights: a few big cities, many villages.
        let weight = 1.0 / (1.0 + i as f64).powf(0.7);
        total += weight;
        towns.push(Town {
            center: Point::new(
                rng.random_range(world * 0.05..world * 0.95),
                rng.random_range(world * 0.05..world * 0.95),
            ),
            sigma: rng.random_range(0.6..2.2),
            weight,
        });
    }
    for t in &mut towns {
        t.weight /= total;
    }
    towns
}

/// Samples a town index proportional to weight.
fn pick_town(rng: &mut StdRng, towns: &[Town]) -> usize {
    let mut x = rng.random::<f64>();
    for (i, t) in towns.iter().enumerate() {
        if x < t.weight {
            return i;
        }
        x -= t.weight;
    }
    towns.len() - 1
}

/// Standard normal via Box–Muller (rand_distr is outside the allowed crate
/// set, and two lines suffice).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn clamp_world(p: Point, world: f64) -> Point {
    Point::new(p.x.clamp(0.0, world), p.y.clamp(0.0, world))
}

/// Map 1: short grid-aligned street segments clustered around towns.
fn gen_streets(rng: &mut StdRng, towns: &[Town], count: usize, world: f64) -> Vec<MapObject> {
    let mut out = Vec::with_capacity(count);
    for oid in 0..count {
        let town = towns[pick_town(rng, towns)];
        let anchor = Point::new(
            town.center.x + normal(rng) * town.sigma,
            town.center.y + normal(rng) * town.sigma,
        );
        // Street length: mostly 60–250 m, grid-aligned with jitter.
        let len = 0.06 + rng.random::<f64>().powi(2) * 0.25;
        let horizontal = rng.random::<bool>();
        let jitter = normal(rng) * 0.01;
        let (dx, dy) = if horizontal {
            (len, jitter)
        } else {
            (jitter, len)
        };
        let a = clamp_world(anchor, world);
        let b = clamp_world(Point::new(anchor.x + dx, anchor.y + dy), world);
        // Some streets get a bend (TIGER chains often have shape points).
        let geom = if rng.random::<f64>() < 0.3 {
            let mid = Point::new(
                (a.x + b.x) * 0.5 + normal(rng) * 0.01,
                (a.y + b.y) * 0.5 + normal(rng) * 0.01,
            );
            Polyline::new(vec![a, clamp_world(mid, world), b])
        } else {
            Polyline::new(vec![a, b])
        };
        out.push(MapObject {
            oid: oid as u64,
            geom,
        });
    }
    out
}

/// Kinds of map-2 features, with the TIGER-style decomposition into
/// per-segment objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FeatureKind {
    Boundary,
    River,
    Railway,
}

/// Map 2: boundaries, rivers and railway tracks, each generated as a long
/// path and decomposed into one object per segment.
fn gen_features(rng: &mut StdRng, towns: &[Town], count: usize, world: f64) -> Vec<MapObject> {
    let mut out: Vec<MapObject> = Vec::with_capacity(count);
    while out.len() < count {
        let kind = match rng.random_range(0..10) {
            0..4 => FeatureKind::Boundary,
            4..7 => FeatureKind::River,
            _ => FeatureKind::Railway,
        };
        let path = match kind {
            FeatureKind::Boundary => gen_boundary_path(rng, towns, world),
            FeatureKind::River => gen_river_path(rng, world),
            FeatureKind::Railway => gen_railway_path(rng, towns, world),
        };
        for w in path.windows(2) {
            if out.len() >= count {
                break;
            }
            if w[0].distance(&w[1]) < 1e-9 {
                continue;
            }
            let oid = out.len() as u64;
            out.push(MapObject {
                oid,
                geom: Polyline::new(vec![w[0], w[1]]),
            });
        }
    }
    out
}

/// An administrative boundary: a ring around a town (or a county-grid line).
fn gen_boundary_path(rng: &mut StdRng, towns: &[Town], world: f64) -> Vec<Point> {
    if rng.random::<f64>() < 0.35 {
        // County grid line: straight across the world with slight jitter.
        let horizontal = rng.random::<bool>();
        let c = rng.random_range(world * 0.05..world * 0.95);
        let steps = (world * 2.0).ceil().max(8.0) as usize;
        return (0..=steps)
            .map(|i| {
                let t = i as f64 / steps as f64 * world;
                let j = normal(rng) * 0.02;
                if horizontal {
                    Point::new(t, (c + j).clamp(0.0, world))
                } else {
                    Point::new((c + j).clamp(0.0, world), t)
                }
            })
            .collect();
    }
    // Ring around a town at 1.5–3.5 σ, polygonal with irregular radius.
    let town = towns[pick_town(rng, towns)];
    let base_r = town.sigma * rng.random_range(1.5..3.5);
    let steps = rng.random_range(40..120);
    let phase = rng.random_range(0.0..std::f64::consts::TAU);
    let wobble = rng.random_range(0.05..0.25);
    let mut pts: Vec<Point> = (0..=steps)
        .map(|i| {
            let a = phase + i as f64 / steps as f64 * std::f64::consts::TAU;
            let r = base_r * (1.0 + wobble * (3.0 * a).sin());
            clamp_world(
                Point::new(town.center.x + r * a.cos(), town.center.y + r * a.sin()),
                world,
            )
        })
        .collect();
    // Close the ring exactly.
    if let Some(&first) = pts.first() {
        pts.push(first);
    }
    pts
}

/// A river: a meandering walk from one edge of the world to another.
fn gen_river_path(rng: &mut StdRng, world: f64) -> Vec<Point> {
    let from_left = rng.random::<bool>();
    let mut p = if from_left {
        Point::new(0.0, rng.random_range(0.0..world))
    } else {
        Point::new(rng.random_range(0.0..world), 0.0)
    };
    let mut heading: f64 = if from_left {
        0.0
    } else {
        std::f64::consts::FRAC_PI_2
    };
    let mut pts = vec![p];
    let step = 0.25;
    for _ in 0..2000 {
        heading += normal(rng) * 0.25;
        let q = Point::new(p.x + step * heading.cos(), p.y + step * heading.sin());
        if q.x < 0.0 || q.x > world || q.y < 0.0 || q.y > world {
            break;
        }
        pts.push(q);
        p = q;
    }
    pts
}

/// A railway: a nearly straight line connecting two towns, with shape
/// points every ~300 m.
fn gen_railway_path(rng: &mut StdRng, towns: &[Town], world: f64) -> Vec<Point> {
    let a = towns[pick_town(rng, towns)].center;
    let b = towns[pick_town(rng, towns)].center;
    let dist = a.distance(&b).max(0.5);
    let steps = (dist / 0.3).ceil() as usize;
    (0..=steps)
        .map(|i| {
            let t = i as f64 / steps as f64;
            let jitter = if i == 0 || i == steps {
                0.0
            } else {
                normal(rng) * 0.03
            };
            clamp_world(
                Point::new(
                    a.x + (b.x - a.x) * t + jitter,
                    a.y + (b.y - a.y) * t + jitter,
                ),
                world,
            )
        })
        .collect()
}

/// Summary statistics of one generated map, for calibration reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MapStats {
    /// Number of objects.
    pub objects: usize,
    /// Average MBR width + height (a size proxy).
    pub avg_mbr_extent: f64,
    /// Average number of vertices per object.
    pub avg_vertices: f64,
    /// MBR of the whole map.
    pub extent: Rect,
}

/// Computes [`MapStats`] for a map.
pub fn map_stats(objects: &[MapObject]) -> MapStats {
    let mut extent = Rect::empty();
    let mut sum_ext = 0.0;
    let mut sum_v = 0usize;
    for o in objects {
        let m = o.mbr();
        extent = extent.union(&m);
        sum_ext += m.width() + m.height();
        sum_v += o.geom.points().len();
    }
    let n = objects.len().max(1) as f64;
    MapStats {
        objects: objects.len(),
        avg_mbr_extent: sum_ext / n,
        avg_vertices: sum_v as f64 / n,
        extent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let s = Scenario::scaled(42, 0.005);
        let (a1, a2) = s.generate();
        let (b1, b2) = s.generate();
        assert_eq!(a1, b1);
        assert_eq!(a2, b2);
    }

    #[test]
    fn different_seeds_differ() {
        let (a1, _) = Scenario::scaled(1, 0.005).generate();
        let (b1, _) = Scenario::scaled(2, 0.005).generate();
        assert_ne!(a1, b1);
    }

    #[test]
    fn counts_match_config() {
        let s = Scenario::scaled(7, 0.01);
        let (m1, m2) = s.generate();
        assert_eq!(m1.len(), s.map1_objects);
        assert_eq!(m2.len(), s.map2_objects);
    }

    #[test]
    fn paper_scenario_counts() {
        let s = Scenario::paper(0);
        assert_eq!(s.map1_objects, 131_443);
        assert_eq!(s.map2_objects, 127_312);
    }

    #[test]
    fn oids_are_dense_and_unique() {
        let (m1, m2) = Scenario::scaled(3, 0.005).generate();
        for (i, o) in m1.iter().enumerate() {
            assert_eq!(o.oid, i as u64);
        }
        for (i, o) in m2.iter().enumerate() {
            assert_eq!(o.oid, i as u64);
        }
    }

    #[test]
    fn objects_stay_in_world() {
        let s = Scenario::scaled(5, 0.01);
        let (m1, m2) = s.generate();
        let world = Rect::new(0.0, 0.0, s.world, s.world);
        for o in m1.iter().chain(m2.iter()) {
            assert!(
                world.contains(&o.mbr()),
                "object {} escapes: {:?}",
                o.oid,
                o.mbr()
            );
        }
    }

    #[test]
    fn street_mbrs_are_small() {
        let (m1, _) = Scenario::scaled(11, 0.01).generate();
        let stats = map_stats(&m1);
        assert!(
            stats.avg_mbr_extent < 1.0,
            "streets too large: {}",
            stats.avg_mbr_extent
        );
        assert!(stats.avg_vertices >= 2.0);
    }

    #[test]
    fn maps_overlap_spatially() {
        // The join must have work to do: many map1 MBRs intersect map2 MBRs.
        let (m1, m2) = Scenario::scaled(13, 0.01).generate();
        let mut hits = 0usize;
        for a in m1.iter().take(200) {
            let ma = a.mbr();
            if m2.iter().any(|b| ma.intersects(&b.mbr())) {
                hits += 1;
            }
        }
        assert!(hits > 10, "only {hits}/200 streets touch map2");
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn invalid_scale_rejected() {
        let _ = Scenario::scaled(0, 0.0);
    }
}
