//! Shared harness for the experiment binaries.
//!
//! Every `fig*`/`table*` binary builds the same workload: the synthetic
//! TIGER-like scenario at a chosen scale, indexed by two R\*-trees with the
//! paper's page layout. `--scale <f>` (default 1.0 = paper scale) and
//! `--seed <n>` are accepted by all binaries so the full suite can be run
//! quickly at reduced scale.

use psj_datagen::{MapObject, Scenario};
use psj_rtree::{PagedTree, RTree};
use std::collections::HashMap;
use std::time::Instant;

/// Workload scale and seed parsed from the command line.
#[derive(Debug, Clone, Copy)]
pub struct ExpArgs {
    /// Workload scale (1.0 = the paper's Table 1 sizes).
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
}

impl ExpArgs {
    /// Parses `--scale <f>` and `--seed <n>` from `std::env::args`.
    pub fn parse() -> Self {
        let mut args = ExpArgs {
            scale: 1.0,
            seed: 1996,
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    args.scale = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scale needs a float argument");
                }
                "--seed" => {
                    args.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer argument");
                }
                "--help" | "-h" => {
                    eprintln!("usage: <bin> [--scale <f>] [--seed <n>]");
                    std::process::exit(0);
                }
                other => panic!("unknown argument: {other}"),
            }
        }
        args
    }

    /// The scenario these arguments select.
    pub fn scenario(&self) -> Scenario {
        if (self.scale - 1.0).abs() < 1e-12 {
            Scenario::paper(self.seed)
        } else {
            Scenario::scaled(self.seed, self.scale)
        }
    }
}

/// The built workload: both maps and their frozen R\*-trees.
pub struct Workload {
    /// Street map (paper's map 1).
    pub map1: Vec<MapObject>,
    /// Boundaries/rivers/railways map (paper's map 2).
    pub map2: Vec<MapObject>,
    /// R\*-tree over map 1.
    pub tree1: PagedTree,
    /// R\*-tree over map 2.
    pub tree2: PagedTree,
}

/// Generates the maps and builds + freezes both trees (dynamic R\*-tree
/// insertion, as in the paper). Progress goes to stderr.
pub fn build_workload(args: &ExpArgs) -> Workload {
    let scenario = args.scenario();
    eprintln!(
        "[workload] generating scenario: {} + {} objects, seed {}, world {:.0} km",
        scenario.map1_objects, scenario.map2_objects, scenario.seed, scenario.world
    );
    let t0 = Instant::now();
    let (map1, map2) = scenario.generate();
    eprintln!("[workload] generated in {:.1?}", t0.elapsed());

    let tree1 = build_tree(&map1, "map1");
    let tree2 = build_tree(&map2, "map2");
    Workload {
        map1,
        map2,
        tree1,
        tree2,
    }
}

/// Stored attribute payload per TIGER-style record (address ranges, feature
/// names, classification codes) in addition to the bare coordinates.
/// Calibrated so the average geometry cluster is ~26 KB as in the paper.
pub const TIGER_ATTR_BYTES: u64 = 1365;

fn build_tree(objects: &[MapObject], name: &str) -> PagedTree {
    let t0 = Instant::now();
    let mut tree = RTree::new();
    for o in objects {
        tree.insert(o.mbr(), o.oid);
    }
    let geoms: HashMap<u64, psj_geom::Polyline> =
        objects.iter().map(|o| (o.oid, o.geom.clone())).collect();
    let paged =
        PagedTree::freeze_with_attrs(&tree, |oid| geoms.get(&oid).cloned(), TIGER_ATTR_BYTES);
    eprintln!(
        "[workload] {name}: built + froze {} entries into {} pages in {:.1?}",
        paged.len(),
        paged.num_pages(),
        t0.elapsed()
    );
    paged
}

/// Formats a virtual-time value in seconds with 1 decimal.
pub fn secs(ns: psj_store::Nanos) -> String {
    format!("{:.1}", psj_store::timing::to_secs(ns))
}

/// One measured point of the Figure 9/10 series.
#[derive(Debug, Clone, Copy)]
pub struct SeriesPoint {
    /// Number of processors.
    pub n: usize,
    /// Number of disks.
    pub d: usize,
    /// Response time in seconds.
    pub response_secs: f64,
    /// Total disk accesses.
    pub disk_accesses: u64,
    /// Sum of all processors' busy times in seconds ("total run time of all
    /// tasks").
    pub total_busy_secs: f64,
}

/// How the number of disks follows the number of processors in the
/// Figure 9/10 series.
#[derive(Debug, Clone, Copy)]
pub enum DiskSeries {
    /// A fixed number of disks.
    Fixed(usize),
    /// As many disks as processors (`d = n`).
    EqualToProcs,
}

/// Runs the best variant (global buffer, dynamic assignment, reassignment on
/// all levels) for each processor count, with the paper's buffer scaling of
/// 100 pages per processor (scaled alongside the workload).
pub fn speedup_series(
    w: &Workload,
    procs: &[usize],
    disks: DiskSeries,
    scale: f64,
) -> Vec<SeriesPoint> {
    use psj_core::{run_sim_join, SimConfig};
    procs
        .iter()
        .map(|&n| {
            let d = match disks {
                DiskSeries::Fixed(d) => d,
                DiskSeries::EqualToProcs => n,
            };
            let pages = (((100 * n) as f64 * scale).ceil() as usize).max(2 * n);
            let m = run_sim_join(&w.tree1, &w.tree2, &SimConfig::best(n, d, pages)).metrics;
            SeriesPoint {
                n,
                d,
                response_secs: m.response_secs(),
                disk_accesses: m.disk_accesses,
                total_busy_secs: m.total_busy_secs(),
            }
        })
        .collect()
}

/// The processor counts of the Figure 9/10 sweeps.
pub const FIG9_PROCS: [usize; 10] = [1, 2, 4, 6, 8, 10, 12, 16, 20, 24];

/// Builds the workload with Hilbert-packed trees (tree-construction
/// ablation).
pub fn build_workload_hilbert(args: &ExpArgs) -> Workload {
    build_workload_with(args, psj_rtree::hilbert::bulk_load_hilbert, "hilbert")
}

/// Builds the workload with STR-bulk-loaded trees instead of dynamic
/// R\*-tree insertion (the tree-construction ablation).
pub fn build_workload_str(args: &ExpArgs) -> Workload {
    build_workload_with(args, psj_rtree::bulk::bulk_load_str, "STR")
}

fn build_workload_with(
    args: &ExpArgs,
    load: impl Fn(&[(psj_geom::Rect, u64)]) -> psj_rtree::RTree,
    label: &str,
) -> Workload {
    let scenario = args.scenario();
    let (map1, map2) = scenario.generate();
    let build = |objects: &[MapObject], name: &str| {
        let t0 = Instant::now();
        let items: Vec<(psj_geom::Rect, u64)> = objects.iter().map(|o| (o.mbr(), o.oid)).collect();
        let tree = load(&items);
        let geoms: HashMap<u64, psj_geom::Polyline> =
            objects.iter().map(|o| (o.oid, o.geom.clone())).collect();
        let paged =
            PagedTree::freeze_with_attrs(&tree, |oid| geoms.get(&oid).cloned(), TIGER_ATTR_BYTES);
        eprintln!(
            "[workload] {name} ({label}): {} entries into {} pages in {:.1?}",
            paged.len(),
            paged.num_pages(),
            t0.elapsed()
        );
        paged
    };
    let tree1 = build(&map1, "map1");
    let tree2 = build(&map2, "map2");
    Workload {
        map1,
        map2,
        tree1,
        tree2,
    }
}
