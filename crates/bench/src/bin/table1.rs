//! Table 1 — parameters of the R\*-trees.
//!
//! Regenerates the paper's Table 1 for the synthetic workload: tree height,
//! number of data entries / data pages / directory pages, and `m`, the
//! number of intersecting MBR pairs in the root pages (= number of tasks).

use psj_bench::{build_workload, ExpArgs};
use psj_core::create_tasks;

fn main() {
    let args = ExpArgs::parse();
    let w = build_workload(&args);
    let s1 = w.tree1.stats();
    let s2 = w.tree2.stats();
    // m: intersecting root-entry pairs = tasks when created at root level.
    let tc = create_tasks(&w.tree1, &w.tree2, 1);
    let m = tc.tasks.len();

    println!("Table 1: Parameters of the R*-trees");
    println!("{:<28} {:>12} {:>12}", "", "tree1", "tree2");
    println!("{:<28} {:>12} {:>12}", "height", s1.height, s2.height);
    println!(
        "{:<28} {:>12} {:>12}",
        "number of data entries", s1.num_data_entries, s2.num_data_entries
    );
    println!(
        "{:<28} {:>12} {:>12}",
        "number of data pages", s1.num_data_pages, s2.num_data_pages
    );
    println!(
        "{:<28} {:>12} {:>12}",
        "number of directory pages", s1.num_dir_pages, s2.num_dir_pages
    );
    println!("{:<28} {:>12} {:>12}", "m (number of tasks)", m, m);
    println!();
    println!(
        "{:<28} {:>11.1}% {:>11.1}%",
        "data page utilization",
        s1.data_utilization() * 100.0,
        s2.data_utilization() * 100.0
    );
    println!(
        "{:<28} {:>9} KB {:>9} KB",
        "avg geometry cluster",
        s1.avg_cluster_bytes / 1024,
        s2.avg_cluster_bytes / 1024
    );
    println!();
    println!("paper reference (TIGER California counties):");
    println!("  height 3/3, entries 131443/127312, data pages 6968/6778,");
    println!("  directory pages 95/92, m = 404");
}
