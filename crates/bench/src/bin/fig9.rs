//! Figure 9 — response time as a function of the number of processors.
//!
//! Best variant (global buffer, dynamic task assignment, reassignment on
//! all levels); total buffer = 100 pages per processor; disk series d = 1,
//! d = 8 and d = n.
//!
//! Expected shape (paper): with one disk the response time bottoms out at
//! ~550 s for ≥ 4 processors; with 8 disks it keeps falling but flattens
//! beyond ~10 processors; with d = n it falls near-linearly to ~63 s at 24
//! processors.

use psj_bench::{build_workload, speedup_series, DiskSeries, ExpArgs, FIG9_PROCS};

fn main() {
    let args = ExpArgs::parse();
    let w = build_workload(&args);

    let d1 = speedup_series(&w, &FIG9_PROCS, DiskSeries::Fixed(1), args.scale);
    let d8 = speedup_series(&w, &FIG9_PROCS, DiskSeries::Fixed(8), args.scale);
    let dn = speedup_series(&w, &FIG9_PROCS, DiskSeries::EqualToProcs, args.scale);

    println!("Figure 9: response time [s] vs number of processors");
    println!("{:>6} {:>12} {:>12} {:>12}", "n", "d=1", "d=8", "d=n");
    for i in 0..FIG9_PROCS.len() {
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>12.1}",
            FIG9_PROCS[i], d1[i].response_secs, d8[i].response_secs, dn[i].response_secs
        );
    }
    println!();
    println!("(paper: d=1 saturates ≈550 s beyond 4 processors; d=n reaches 62.8 s at n=24)");
}
