//! Calibration probe (not a paper figure): reports workload statistics and
//! a couple of simulated runs so the cost-model calibration can be checked
//! quickly. See EXPERIMENTS.md.

use psj_bench::{build_workload, ExpArgs};
use psj_core::{join_candidates, run_sim_join, SimConfig};
use std::time::Instant;

fn main() {
    let args = ExpArgs::parse();
    let w = build_workload(&args);

    let t0 = Instant::now();
    let seq = join_candidates(&w.tree1, &w.tree2);
    println!(
        "sequential filter step: {} candidates, {} node pairs ({:.1?} real)",
        seq.candidates.len(),
        seq.node_pairs,
        t0.elapsed()
    );
    println!(
        "clusters: avg {} KB / {} KB",
        w.tree1.stats().avg_cluster_bytes / 1024,
        w.tree2.stats().avg_cluster_bytes / 1024
    );

    for (n, d) in [(1usize, 1usize), (8, 8), (24, 24)] {
        let cfg = SimConfig::best(n, d, 100 * n);
        let t0 = Instant::now();
        let m = run_sim_join(&w.tree1, &w.tree2, &cfg).metrics;
        println!(
            "best variant n={n:>2} d={d:>2}: response {:>8.1} s, disk accesses {:>7}, tasks {}, candidates {}, reassigns {} ({:.1?} real)",
            m.response_secs(),
            m.disk_accesses,
            m.tasks,
            m.candidates,
            m.reassignments,
            t0.elapsed()
        );
    }
}
