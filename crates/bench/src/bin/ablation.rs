//! Ablation study (beyond the paper's figures): quantifies the design
//! choices DESIGN.md calls out, on the best variant (gd + all-level
//! reassignment, n = d = 8, total buffer 800 pages).
//!
//! 1. **Path buffer** on/off — §2.2 claims the path buffer absorbs repeat
//!    accesses along the current path and reduces global-buffer traffic.
//! 2. **Search-space restriction** on/off — the [BKS 93] CPU tuning.
//! 3. **Buffer replacement policy** LRU vs CLOCK vs FIFO — the paper uses
//!    LRU ([GR 93]); how much does the join's spatial locality depend on it?
//! 4. **Tree construction** dynamic R\*-tree insertion vs STR bulk loading —
//!    fuller pages mean fewer tasks and fewer, larger I/Os.

use psj_bench::{build_workload, build_workload_hilbert, build_workload_str, ExpArgs};
use psj_buffer::Policy;
use psj_core::{run_sim_join, SimConfig};

fn main() {
    let args = ExpArgs::parse();
    let w = build_workload(&args);
    let n = 8usize;
    let pages = ((800.0 * args.scale).ceil() as usize).max(2 * n);
    let base = SimConfig::best(n, n, pages);

    println!("Ablation study (best variant, {n} procs, {n} disks, buffer {pages} pages)");
    println!();
    println!(
        "{:<34} {:>9} {:>12} {:>12} {:>12}",
        "configuration", "resp[s]", "disk reads", "buf hits", "path hits"
    );

    let row = |label: &str, cfg: &SimConfig| {
        let m = run_sim_join(&w.tree1, &w.tree2, cfg).metrics;
        println!(
            "{:<34} {:>9.1} {:>12} {:>12} {:>12}",
            label,
            m.response_secs(),
            m.disk_accesses,
            m.buffer.hits_local + m.buffer.hits_remote + m.buffer.hits_in_flight,
            m.buffer.hits_path
        );
    };

    row("baseline (paper)", &base);

    let mut no_path = base.clone();
    no_path.use_path_buffer = false;
    row("- path buffer", &no_path);

    let mut no_restrict = base.clone();
    no_restrict.use_restriction = false;
    row("- search-space restriction", &no_restrict);

    let mut clock = base.clone();
    clock.policy = Policy::Clock;
    row("replacement: CLOCK", &clock);

    let mut fifo = base.clone();
    fifo.policy = Policy::Fifo;
    row("replacement: FIFO", &fifo);

    println!();

    // Tree-construction ablation: STR bulk loading.
    let ws = build_workload_str(&args);
    let m_dyn = run_sim_join(&w.tree1, &w.tree2, &base).metrics;
    let m_str = run_sim_join(&ws.tree1, &ws.tree2, &base).metrics;
    println!("tree construction (same cost model):");
    println!(
        "{:<34} {:>9} {:>12} {:>8} {:>12}",
        "", "resp[s]", "disk reads", "tasks", "candidates"
    );
    println!(
        "{:<34} {:>9.1} {:>12} {:>8} {:>12}",
        "dynamic R*-tree insertion",
        m_dyn.response_secs(),
        m_dyn.disk_accesses,
        m_dyn.tasks,
        m_dyn.candidates
    );
    println!(
        "{:<34} {:>9.1} {:>12} {:>8} {:>12}",
        "STR bulk loading",
        m_str.response_secs(),
        m_str.disk_accesses,
        m_str.tasks,
        m_str.candidates
    );
    let wh = build_workload_hilbert(&args);
    let m_hil = run_sim_join(&wh.tree1, &wh.tree2, &base).metrics;
    println!(
        "{:<34} {:>9.1} {:>12} {:>8} {:>12}",
        "Hilbert packing",
        m_hil.response_secs(),
        m_hil.disk_accesses,
        m_hil.tasks,
        m_hil.candidates
    );
}
