//! Figure 5 — total disk accesses as a function of the LRU buffer size.
//!
//! Variants: `lsr` (local buffers, static range), `gsrr` (global buffer,
//! static round-robin), `gd` (global buffer, dynamic assignment); task
//! reassignment on the root level; n = d ∈ {8, 24}; total buffer size 200 …
//! 3200 pages.
//!
//! Expected shape (paper): lsr ≈ gsrr, gd lowest; the global buffer profits
//! more from larger buffers; 24 processors read more than 8 (per-processor
//! buffer share shrinks).

use psj_bench::{build_workload, ExpArgs};
use psj_core::{run_sim_join, SimConfig};

fn main() {
    let args = ExpArgs::parse();
    let w = build_workload(&args);
    let buffer_sizes = [200usize, 400, 800, 1600, 3200];

    for n in [8usize, 24] {
        println!("Figure 5: disk accesses, {n} processors / {n} disks");
        println!("{:>8} {:>10} {:>10} {:>10}", "buffer", "lsr", "gsrr", "gd");
        for &pages in &buffer_sizes {
            let pages = ((pages as f64 * args.scale).ceil() as usize).max(2 * n);
            let lsr = run_sim_join(&w.tree1, &w.tree2, &SimConfig::lsr(n, n, pages)).metrics;
            let gsrr = run_sim_join(&w.tree1, &w.tree2, &SimConfig::gsrr(n, n, pages)).metrics;
            let gd = run_sim_join(&w.tree1, &w.tree2, &SimConfig::gd(n, n, pages)).metrics;
            println!(
                "{:>8} {:>10} {:>10} {:>10}",
                pages, lsr.disk_accesses, gsrr.disk_accesses, gd.disk_accesses
            );
        }
        println!();
    }
    println!("(paper: lsr and gsrr close together, gd lowest; global buffer");
    println!(" profits more from larger buffers; more processors => more reads)");
}
