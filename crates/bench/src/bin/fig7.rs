//! Figure 7 — effect of the task reassignment.
//!
//! For each variant (lsr / gsrr / gd, total buffer 800 pages, n = d = 8):
//! run times of the processors finishing first and last plus the average
//! (left diagrams) and the number of disk accesses (right diagrams), for
//! (1) no reassignment, (2) reassignment on the root level, (3) reassignment
//! on all levels of the R\*-tree directories.
//!
//! Expected shape (paper): reassignment shrinks the max−min spread and the
//! response time markedly for lsr and gsrr, slightly increases total work;
//! for gd, variants 1 and 2 coincide (the dynamic queue already hands out
//! root-level work task by task) and the improvement of 3 is smaller; gd's
//! disk accesses do not increase.

use psj_bench::{build_workload, ExpArgs};
use psj_core::{run_sim_join, Reassignment, SimConfig};

fn main() {
    let args = ExpArgs::parse();
    let w = build_workload(&args);
    let n = 8usize;
    let pages = ((800.0 * args.scale).ceil() as usize).max(2 * n);

    type MakeConfig = fn(usize, usize, usize) -> SimConfig;
    let variants: [(&str, MakeConfig); 3] = [
        ("lsr", SimConfig::lsr),
        ("gsrr", SimConfig::gsrr),
        ("gd", SimConfig::gd),
    ];
    let reassignments = [
        ("1 none", Reassignment::None),
        ("2 root level", Reassignment::RootLevel),
        ("3 all levels", Reassignment::AllLevels),
    ];

    println!("Figure 7: run times and disk accesses with/without task reassignment");
    println!("({n} processors, {n} disks, total buffer {pages} pages)");
    println!();
    for (name, make) in variants {
        println!("--- {name} ---");
        println!(
            "{:<16} {:>9} {:>9} {:>9} {:>12} {:>8}",
            "reassignment", "min[s]", "avg[s]", "max[s]", "disk reads", "steals"
        );
        for (rname, r) in reassignments {
            let mut cfg = make(n, n, pages);
            cfg.reassignment = r;
            let m = run_sim_join(&w.tree1, &w.tree2, &cfg).metrics;
            println!(
                "{:<16} {:>9.1} {:>9.1} {:>9.1} {:>12} {:>8}",
                rname,
                m.min_finish_secs(),
                m.avg_finish_secs(),
                m.max_finish_secs(),
                m.disk_accesses,
                m.reassignments
            );
        }
        println!();
    }
}
