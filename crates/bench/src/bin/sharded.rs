//! Shared-nothing extension experiment (paper §5 future work): response
//! time and network traffic of the distributed join as a function of the
//! number of sites, for both page placements and two interconnects.
//!
//! Expected shape: with the mid-90s ATM interconnect, remote page service
//! costs approach a disk read, so placement matters and scaling bends much
//! earlier than on the SVM platform; with a fast modern network the curve
//! approaches the Figure 9 d = n behaviour — supporting the paper's closing
//! conjecture that "shared-nothing architectures available soon will be
//! comparable to a state-of-the-art SVM-architecture".

use psj_bench::{build_workload, ExpArgs};
use psj_core::{run_sharded_join, Network, Placement, ShardedConfig};

fn main() {
    let args = ExpArgs::parse();
    let w = build_workload(&args);
    let sites = [1usize, 2, 4, 8, 16, 24];

    for (net_name, net) in [
        ("ATM (250us, 12MB/s)", Network::atm()),
        ("fast (10us, 1GB/s)", Network::fast()),
    ] {
        println!("Shared-nothing join, {net_name} interconnect");
        println!(
            "{:>6} {:>14} {:>14} {:>12} {:>12}",
            "sites", "rr resp[s]", "contig resp[s]", "rr net[MB]", "contig [MB]"
        );
        for &n in &sites {
            let pages = (((100 * n) as f64 * args.scale).ceil() as usize / n).max(2);
            let mut row = Vec::new();
            for placement in [Placement::RoundRobin, Placement::Contiguous] {
                let cfg = ShardedConfig {
                    placement,
                    network: net,
                    ..ShardedConfig::new(n, pages)
                };
                let m = run_sharded_join(&w.tree1, &w.tree2, &cfg).metrics;
                row.push((
                    m.join.response_secs(),
                    m.network_bytes as f64 / (1024.0 * 1024.0),
                ));
            }
            println!(
                "{:>6} {:>14.1} {:>14.1} {:>12.1} {:>12.1}",
                n, row[0].0, row[1].0, row[0].1, row[1].1
            );
        }
        println!();
    }
}
