//! Figure 8 — choosing the processor to be helped.
//!
//! Test series (a): the idle processor helps the processor with the most
//! extensive work load (highest reported `(hl, ns)`). Test series (b): an
//! arbitrary processor is chosen ([SN 93]). Compared for a local-buffer
//! variant (lsr) and a global-buffer variant (gd), reassignment on all
//! levels, n = d = 8.
//!
//! Expected shape (paper): with local buffers, arbitrary selection causes a
//! small increase in disk accesses (more reassignments whose helper lacks
//! the pages); with a global buffer there is no difference. The overhead of
//! determining the most loaded processor is negligible either way.

use psj_bench::{build_workload, ExpArgs};
use psj_core::{run_sim_join, Reassignment, SimConfig, VictimSelection};

fn main() {
    let args = ExpArgs::parse();
    let w = build_workload(&args);
    let n = 8usize;
    let pages = ((800.0 * args.scale).ceil() as usize).max(2 * n);

    println!("Figure 8: victim selection for the task reassignment");
    println!("({n} processors, {n} disks, total buffer {pages} pages, reassignment on all levels)");
    println!();
    println!(
        "{:<8} {:<14} {:>12} {:>9} {:>8} {:>10}",
        "variant", "selection", "disk reads", "resp[s]", "steals", "reassign"
    );
    for (vname, make) in [
        (
            "lsr",
            SimConfig::lsr as fn(usize, usize, usize) -> SimConfig,
        ),
        ("gd", SimConfig::gd),
    ] {
        for (sname, sel) in [
            ("a most-loaded", VictimSelection::MostLoaded),
            ("b arbitrary", VictimSelection::Arbitrary),
        ] {
            let mut cfg = make(n, n, pages);
            cfg.reassignment = Reassignment::AllLevels;
            cfg.victim = sel;
            cfg.seed = args.seed;
            let m = run_sim_join(&w.tree1, &w.tree2, &cfg).metrics;
            println!(
                "{:<8} {:<14} {:>12} {:>9.1} {:>8} {:>10}",
                vname,
                sname,
                m.disk_accesses,
                m.response_secs(),
                m.reassignments,
                m.steals_failed
            );
        }
    }
}
