//! Table 2 — parameters of the simulated platform's memory hierarchy, plus
//! the disk and refinement constants of §4.2. Prints the model the
//! simulator actually uses, for comparison with the paper.

use psj_core::cost::CostModel;
use psj_store::timing::to_millis;
use psj_store::DiskModel;

fn main() {
    println!("Table 2: Parameters of the KSR1 concerning the memory (as modelled)");
    print!("{}", CostModel::table2());
    println!();

    let c = CostModel::paper();
    println!("derived page-access costs:");
    println!(
        "  local buffer hit   {:>8.3} ms   remote buffer hit {:>8.3} ms",
        to_millis(c.mem_local_page),
        to_millis(c.mem_remote_page)
    );
    println!(
        "  global-buffer lock {:>8.3} ms   task queue access {:>8.3} ms",
        to_millis(c.global_lock),
        to_millis(c.task_queue_access)
    );
    println!();

    let d = DiskModel::paper(8);
    println!("disk model (9 ms seek + 6 ms latency + 1 ms / 4 KB):");
    println!(
        "  directory page read {:>7.1} ms",
        to_millis(d.page_read_time())
    );
    println!(
        "  data page + 26 KB cluster {:>7.1} ms",
        to_millis(d.data_page_read_time(26 * 1024))
    );
    println!();
    println!(
        "refinement test per candidate: {:.0}–{:.0} ms depending on MBR overlap",
        to_millis(c.refine_base),
        to_millis(c.refine_base + c.refine_span)
    );
}
