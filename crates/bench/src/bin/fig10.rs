//! Figure 10 — speed-up and disk accesses as a function of the number of
//! processors.
//!
//! Same runs as Figure 9; the speed-up is `t(1) / t(n)` per disk series.
//! Additionally prints the total run time of all tasks, which the paper
//! reports as ~7 % above t(1) at 4 processors and falling for more
//! processors (§4.5).
//!
//! Expected shape (paper): speed-up saturates quickly for d = 1, bends
//! beyond ~10 processors for d = 8, and is near-linear for d = n (22.6 at
//! 24 processors); the number of disk accesses *falls* with n for d = n
//! because the global buffer grows with the processor count.

use psj_bench::{build_workload, speedup_series, DiskSeries, ExpArgs, FIG9_PROCS};

fn main() {
    let args = ExpArgs::parse();
    let w = build_workload(&args);

    let d1 = speedup_series(&w, &FIG9_PROCS, DiskSeries::Fixed(1), args.scale);
    let d8 = speedup_series(&w, &FIG9_PROCS, DiskSeries::Fixed(8), args.scale);
    let dn = speedup_series(&w, &FIG9_PROCS, DiskSeries::EqualToProcs, args.scale);

    println!("Figure 10: speed up t(1)/t(n) and disk accesses vs number of processors");
    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>13} {:>13}",
        "n", "d=1", "d=8", "d=n", "reads(d=n)", "busy[s](d=n)"
    );
    for i in 0..FIG9_PROCS.len() {
        println!(
            "{:>6} {:>9.1} {:>9.1} {:>9.1} {:>13} {:>13.1}",
            FIG9_PROCS[i],
            d1[0].response_secs / d1[i].response_secs,
            d8[0].response_secs / d8[i].response_secs,
            dn[0].response_secs / dn[i].response_secs,
            dn[i].disk_accesses,
            dn[i].total_busy_secs,
        );
    }
    println!();
    println!("(paper: speed up 22.6 at n = d = 24; disk accesses fall with the growing");
    println!(" global buffer; total run time of all tasks only slightly above t(1))");
}
