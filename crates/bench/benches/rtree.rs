//! Criterion micro-benchmarks for the R*-tree: dynamic insertion, STR bulk
//! loading, freezing, and window queries.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use psj_datagen::Scenario;
use psj_geom::Rect;
use psj_rtree::{bulk::bulk_load_str, PagedTree, RTree};
use std::hint::black_box;

fn items(n: usize) -> Vec<(Rect, u64)> {
    let s = Scenario::scaled(7, (n as f64 / 131_443.0).clamp(0.001, 1.0));
    let (m1, _) = s.generate();
    m1.iter().take(n).map(|o| (o.mbr(), o.oid)).collect()
}

fn bench_insert(c: &mut Criterion) {
    let data = items(10_000);
    let mut g = c.benchmark_group("rtree_insert");
    g.throughput(Throughput::Elements(data.len() as u64));
    g.sample_size(10);
    g.bench_function("dynamic_10k", |b| {
        b.iter(|| {
            let mut t = RTree::new();
            for &(r, oid) in &data {
                t.insert(r, oid);
            }
            black_box(t.len())
        })
    });
    g.bench_function("str_bulk_10k", |b| {
        b.iter(|| black_box(bulk_load_str(&data).len()))
    });
    g.finish();
}

fn bench_freeze(c: &mut Criterion) {
    let data = items(10_000);
    let mut tree = RTree::new();
    for &(r, oid) in &data {
        tree.insert(r, oid);
    }
    c.bench_function("rtree_freeze_10k", |b| {
        b.iter_batched(
            || tree.clone(),
            |t| black_box(PagedTree::freeze(&t, |_| None).num_pages()),
            BatchSize::LargeInput,
        )
    });
}

fn bench_query(c: &mut Criterion) {
    let data = items(50_000);
    let mut tree = RTree::new();
    for &(r, oid) in &data {
        tree.insert(r, oid);
    }
    let paged = PagedTree::freeze(&tree, |_| None);
    let world = paged.mbr();
    let mut g = c.benchmark_group("rtree_window_query");
    for frac in [0.01f64, 0.1, 0.5] {
        let w = Rect::new(
            world.xl,
            world.yl,
            world.xl + world.width() * frac,
            world.yl + world.height() * frac,
        );
        g.bench_function(format!("extent_{frac}"), |b| {
            b.iter(|| black_box(paged.window_query(&w).len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_insert, bench_freeze, bench_query);
criterion_main!(benches);
