//! Criterion benchmarks for the buffer layer: raw LRU operations and the
//! local/global managers under a zipfian page-access pattern.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use psj_buffer::{
    GlobalAccess, GlobalBuffer, LocalBuffers, Lru, PageSource, Policy, SharedPageCache,
};
use psj_store::{PageError, PageId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

/// A skewed page-access trace: hot pages dominate, as in a join with
/// spatial locality.
fn trace(len: usize, universe: u32, seed: u64) -> Vec<PageId> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let r: f64 = rng.random();
            PageId(((r * r) * universe as f64) as u32)
        })
        .collect()
}

fn bench_lru(c: &mut Criterion) {
    let accesses = trace(100_000, 4_000, 1);
    let mut g = c.benchmark_group("lru");
    g.throughput(Throughput::Elements(accesses.len() as u64));
    g.bench_function("touch_insert_100k", |b| {
        b.iter(|| {
            let mut lru = Lru::new(800);
            let mut hits = 0u64;
            for &p in &accesses {
                if lru.touch(p) {
                    hits += 1;
                } else {
                    lru.insert(p);
                }
            }
            black_box(hits)
        })
    });
    g.finish();
}

fn bench_managers(c: &mut Criterion) {
    let accesses = trace(100_000, 4_000, 2);
    let mut g = c.benchmark_group("buffer_managers");
    g.throughput(Throughput::Elements(accesses.len() as u64));
    g.bench_function("local_8x100", |b| {
        b.iter(|| {
            let mut lb = LocalBuffers::new(8, 100);
            for (i, &p) in accesses.iter().enumerate() {
                let proc = i % 8;
                if !lb.access(proc, p) {
                    lb.load(proc, p);
                }
            }
            black_box(lb.total_stats().misses)
        })
    });
    g.bench_function("global_800", |b| {
        b.iter(|| {
            let mut gb = GlobalBuffer::new(8, 800);
            for (i, &p) in accesses.iter().enumerate() {
                let proc = i % 8;
                if let GlobalAccess::Miss = gb.access(proc, p) {
                    gb.complete_read(proc, p);
                }
            }
            black_box(gb.total_stats().misses)
        })
    });
    g.finish();
}

/// Trivial source so the benchmark measures cache overhead, not fetch cost.
struct Ident;

impl PageSource for Ident {
    type Item = u32;

    fn fetch_page(&self, page: PageId) -> Result<u32, PageError> {
        Ok(page.0)
    }

    fn page_count(&self) -> usize {
        4_000
    }
}

fn bench_shared_cache(c: &mut Criterion) {
    let accesses = trace(100_000, 4_000, 3);
    let mut g = c.benchmark_group("shared_cache");
    g.throughput(Throughput::Elements(accesses.len() as u64));
    // Single-threaded baseline against the same trace the managers see.
    g.bench_function("1thread_800p_8shards", |b| {
        b.iter(|| {
            let cache: SharedPageCache<u32> = SharedPageCache::new(1, 800, 8, Policy::Lru);
            for &p in &accesses {
                black_box(cache.get(0, p, &Ident));
            }
            black_box(cache.total_stats().misses)
        })
    });
    // Contended: 8 threads share the trace; measures shard-lock scaling.
    for shards in [1usize, 8] {
        g.bench_function(format!("8threads_800p_{shards}shards"), |b| {
            b.iter(|| {
                let cache: SharedPageCache<u32> = SharedPageCache::new(8, 800, shards, Policy::Lru);
                std::thread::scope(|scope| {
                    for w in 0..8 {
                        let cache = &cache;
                        let accesses = &accesses;
                        scope.spawn(move || {
                            for &p in accesses.iter().skip(w).step_by(8) {
                                black_box(cache.get(w, p, &Ident));
                            }
                        });
                    }
                });
                black_box(cache.total_stats().misses)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lru, bench_managers, bench_shared_cache);
criterion_main!(benches);
