//! Criterion benchmarks for the spatial join itself: the sequential filter
//! step, the native multithreaded executor at different thread counts, and
//! one simulated run (measuring simulator overhead, not virtual time).

use criterion::{criterion_group, criterion_main, Criterion};
use psj_core::{
    join_candidates, run_native_join, run_sim_join, Assignment, NativeConfig, SimConfig,
};
use psj_datagen::Scenario;
use psj_rtree::{PagedTree, RTree};
use std::collections::HashMap;
use std::hint::black_box;

fn workload(scale: f64) -> (PagedTree, PagedTree) {
    let (m1, m2) = Scenario::scaled(1996, scale).generate();
    let build = |objs: &[psj_datagen::MapObject]| {
        let mut t = RTree::new();
        for o in objs {
            t.insert(o.mbr(), o.oid);
        }
        let geoms: HashMap<u64, psj_geom::Polyline> =
            objs.iter().map(|o| (o.oid, o.geom.clone())).collect();
        PagedTree::freeze(&t, |oid| geoms.get(&oid).cloned())
    };
    (build(&m1), build(&m2))
}

fn bench_sequential(c: &mut Criterion) {
    let (a, b) = workload(0.05);
    let mut g = c.benchmark_group("join_sequential");
    g.sample_size(20);
    g.bench_function("filter_step_5pct", |bch| {
        bch.iter(|| black_box(join_candidates(&a, &b).candidates.len()))
    });
    g.finish();
}

fn bench_native_threads(c: &mut Criterion) {
    let (a, b) = workload(0.05);
    let mut g = c.benchmark_group("join_native");
    g.sample_size(20);
    for threads in [1usize, 2, 4, 8] {
        let mut cfg = NativeConfig::new(threads);
        cfg.refine = true;
        g.bench_function(format!("refined_{threads}threads"), |bch| {
            bch.iter(|| black_box(run_native_join(&a, &b, &cfg).pairs.len()))
        });
    }
    g.finish();
}

fn bench_native_assignments(c: &mut Criterion) {
    let (a, b) = workload(0.05);
    let mut g = c.benchmark_group("join_native_assignment");
    g.sample_size(20);
    for assignment in [
        Assignment::Dynamic,
        Assignment::StaticRange,
        Assignment::StaticRoundRobin,
    ] {
        let cfg = NativeConfig {
            assignment,
            refine: false,
            ..NativeConfig::new(4)
        };
        g.bench_function(format!("{:?}_4threads", assignment), |bch| {
            bch.iter(|| black_box(run_native_join(&a, &b, &cfg).pairs.len()))
        });
    }
    g.finish();
}

fn bench_simulator_overhead(c: &mut Criterion) {
    let (a, b) = workload(0.05);
    let mut g = c.benchmark_group("simulator_real_time");
    g.sample_size(20);
    g.bench_function("best_8x8", |bch| {
        let cfg = SimConfig::best(8, 8, 128);
        bch.iter(|| black_box(run_sim_join(&a, &b, &cfg).metrics.disk_accesses))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sequential,
    bench_native_threads,
    bench_native_assignments,
    bench_simulator_overhead
);
criterion_main!(benches);
