//! Criterion benchmarks for the plane-sweep pair computation against the
//! nested-loop baseline — the paper's §2.2 CPU tuning technique.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use psj_geom::sweep::{nested_loop_pairs, sort_by_xl, sweep_pairs, sweep_pairs_restricted};
use psj_geom::Rect;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn random_rects(n: usize, extent: f64, seed: u64) -> Vec<Rect> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<Rect> = (0..n)
        .map(|_| {
            let x = rng.random_range(0.0..100.0);
            let y = rng.random_range(0.0..100.0);
            let w = rng.random_range(0.0..extent);
            let h = rng.random_range(0.0..extent);
            Rect::new(x, y, x + w, y + h)
        })
        .collect();
    sort_by_xl(&mut v);
    v
}

/// Node-sized inputs: a data node holds 26 entries, a directory node 102.
fn bench_node_sized(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep_node_sized");
    for (n, label) in [(26usize, "data_26"), (102, "dir_102")] {
        let r = random_rects(n, 3.0, 1);
        let s = random_rects(n, 3.0, 2);
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_function(format!("sweep_{label}"), |b| {
            b.iter(|| black_box(sweep_pairs(&r, &s).len()))
        });
        g.bench_function(format!("nested_loop_{label}"), |b| {
            b.iter(|| black_box(nested_loop_pairs(&r, &s).len()))
        });
    }
    g.finish();
}

fn bench_large(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep_large");
    g.sample_size(20);
    for n in [1_000usize, 10_000] {
        let r = random_rects(n, 1.0, 3);
        let s = random_rects(n, 1.0, 4);
        g.bench_function(format!("sweep_{n}"), |b| {
            b.iter(|| black_box(sweep_pairs(&r, &s).len()))
        });
    }
    g.finish();
}

fn bench_restricted(c: &mut Criterion) {
    let r = random_rects(102, 3.0, 5);
    let s = random_rects(102, 3.0, 6);
    let window = Rect::new(20.0, 20.0, 40.0, 40.0);
    let (mut fa, mut fb, mut out) = (Vec::new(), Vec::new(), Vec::new());
    c.bench_function("sweep_restricted_dir_102", |b| {
        b.iter(|| {
            out.clear();
            sweep_pairs_restricted(&r, &s, &window, &mut fa, &mut fb, &mut out);
            black_box(out.len())
        })
    });
}

criterion_group!(benches, bench_node_sized, bench_large, bench_restricted);
criterion_main!(benches);
