//! Criterion benchmark for batched window queries: the shared-descent
//! batch executor (`psj_core::batched_window_queries`) against a loop of
//! individual `PagedTree::window_query` calls on the same query set.
//!
//! The batch amortizes directory-node decodes across queries that land in
//! the same subtree, the inter-query analogue of the paper's buffer reuse
//! across a join's node pairs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use psj_core::batched_window_queries;
use psj_geom::Rect;
use psj_rtree::{PagedTree, RTree};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn build_tree(n: usize) -> PagedTree {
    let mut t = RTree::new();
    let mut rng = StdRng::seed_from_u64(7);
    for i in 0..n {
        let x = rng.random_range(0.0..1_000.0);
        let y = rng.random_range(0.0..1_000.0);
        let w = rng.random_range(0.5..4.0);
        t.insert(Rect::new(x, y, x + w, y + w), i as u64);
    }
    PagedTree::freeze(&t, |_| None)
}

/// Clustered query windows (several per hot region), the shape a batching
/// window collects under concurrent clients.
fn windows(count: usize, seed: u64) -> Vec<Rect> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let cx = rng.random_range(0.0..950.0);
        let cy = rng.random_range(0.0..950.0);
        for _ in 0..4 {
            if out.len() == count {
                break;
            }
            let x = (cx + rng.random_range(-20.0..20.0)).clamp(0.0, 950.0);
            let y = (cy + rng.random_range(-20.0..20.0)).clamp(0.0, 950.0);
            out.push(Rect::new(x, y, x + 30.0, y + 30.0));
        }
    }
    out
}

fn bench_window_batches(c: &mut Criterion) {
    let tree = build_tree(60_000);
    let mut g = c.benchmark_group("serve_batch");
    for batch in [8usize, 64] {
        let qs = windows(batch, 11);
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_function(format!("individual_x{batch}"), |b| {
            b.iter(|| {
                let mut total = 0usize;
                for q in &qs {
                    total += tree.window_query(black_box(q)).len();
                }
                black_box(total)
            })
        });
        g.bench_function(format!("shared_descent_x{batch}"), |b| {
            b.iter(|| {
                let results = batched_window_queries(&tree, black_box(&qs));
                black_box(results.iter().map(Vec::len).sum::<usize>())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_window_batches);
criterion_main!(benches);
