//! Differential acceptance tests: every executor configuration must produce
//! exactly the sequential oracle's result set on seeded scenarios — see
//! `src/harness.rs` for the sweep machinery.

use psj_integration::harness::{differential_run, JoinScenario, Sweep};

#[test]
fn paper_maps_scenario_locks_all_executors() {
    let scenario = JoinScenario::paper_maps("paper-maps", 1996, 0.02);
    let report = differential_run(&scenario, &Sweep::full());
    assert!(
        report.oracle_pairs > 100,
        "workload too trivial: {report:?}"
    );
    assert!(report.configs_checked >= 100, "sweep too small: {report:?}");
    assert!(
        report.total_misses > 0,
        "no out-of-core activity: {report:?}"
    );
}

#[test]
fn dense_grid_scenario_locks_all_executors() {
    let scenario = JoinScenario::dense_grid("dense-grid", 1200, 0.5);
    let report = differential_run(&scenario, &Sweep::full());
    assert!(
        report.oracle_pairs > 1000,
        "workload too trivial: {report:?}"
    );
    // The smallest swept cache must be well under the working set:
    // out-of-core correctness is only tested if we actually thrash.
    assert!(
        report.smallest_cache < scenario.total_pages() / 10,
        "cache never went near thrashing: smallest {} of {} pages",
        report.smallest_cache,
        scenario.total_pages()
    );
}

#[test]
fn clustered_scenario_locks_all_executors() {
    let scenario = JoinScenario::clustered("clustered", 42, 1500);
    let report = differential_run(&scenario, &Sweep::full());
    assert!(report.oracle_pairs > 50, "workload too trivial: {report:?}");
    assert!(report.total_misses > 0);
}

#[test]
fn disjoint_scenario_yields_empty_everywhere() {
    // Degenerate but important: zero results must also agree.
    let scenario = JoinScenario::dense_grid("disjoint", 400, 5_000.0);
    let report = differential_run(&scenario, &Sweep::quick());
    assert_eq!(report.oracle_pairs, 0);
}
