//! Robustness acceptance for psj-serve: hostile bytes, truncated frames,
//! client disconnects, overload, and deadline expiry must never panic or
//! wedge the server — it keeps serving throughout.

use proptest::prelude::*;
use psj_geom::Rect;
use psj_rtree::{PagedTree, RTree};
use psj_serve::protocol::{read_frame, write_frame, Request, Response, MAX_REQUEST_FRAME};
use psj_serve::{Client, ClientError, ServeConfig, Server};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier, OnceLock};
use std::time::Duration;

fn grid_tree(n: usize) -> Arc<PagedTree> {
    let mut t = RTree::new();
    for i in 0..n {
        let x = (i % 64) as f64;
        let y = (i / 64) as f64;
        t.insert(Rect::new(x, y, x + 0.9, y + 0.9), i as u64);
    }
    Arc::new(PagedTree::freeze(&t, |_| None))
}

fn start(cfg: ServeConfig) -> (Server, SocketAddr) {
    let server = Server::start(cfg, vec![grid_tree(4000)]).expect("bind loopback");
    let addr = server.local_addr();
    (server, addr)
}

fn quick_cfg() -> ServeConfig {
    ServeConfig {
        workers: 2,
        read_timeout: Duration::from_millis(50),
        cache_pages: 512,
        ..ServeConfig::default()
    }
}

/// The server answers a full window query — the liveness probe used after
/// every attack.
fn assert_alive(addr: SocketAddr) {
    let mut c = Client::connect(addr).expect("connect");
    let got = c
        .window(0, Rect::new(0.0, 0.0, 10.0, 10.0), 0)
        .expect("window");
    assert!(!got.is_empty());
}

#[test]
fn truncated_and_garbage_frames_never_panic_the_server() {
    let (server, addr) = start(quick_cfg());

    // Truncated length prefix.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&[7u8, 0]).unwrap();
    drop(s);

    // Complete prefix, truncated payload.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&10u32.to_le_bytes()).unwrap();
    s.write_all(&[1, 2, 3]).unwrap();
    drop(s);

    // Well-framed garbage payload: an Error response, and the connection
    // stays usable.
    let mut s = TcpStream::connect(addr).unwrap();
    write_frame(&mut s, &[0xff; 10]).unwrap();
    let resp = read_frame(&mut s, usize::MAX)
        .unwrap()
        .expect("error reply");
    assert!(matches!(
        Response::decode(&resp).unwrap(),
        Response::Error(_)
    ));
    write_frame(&mut s, &Request::Stats.encode()).unwrap();
    let resp = read_frame(&mut s, usize::MAX)
        .unwrap()
        .expect("stats reply");
    assert!(matches!(
        Response::decode(&resp).unwrap(),
        Response::Stats(_)
    ));
    drop(s);

    // Oversized length prefix: Error (best effort) and hang-up.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&((MAX_REQUEST_FRAME as u32) + 1).to_le_bytes())
        .unwrap();
    let resp = read_frame(&mut s, usize::MAX).unwrap();
    if let Some(payload) = resp {
        assert!(matches!(
            Response::decode(&payload).unwrap(),
            Response::Error(_)
        ));
    }
    drop(s);

    assert_alive(addr);
    // The two abrupt-close attacks are registered asynchronously by their
    // connection threads; give them a moment before reading counters.
    std::thread::sleep(Duration::from_millis(200));
    let mut c = Client::connect(addr).unwrap();
    let stats = c.stats().unwrap();
    assert!(stats.proto_errors >= 3, "attacks were counted: {stats:?}");
    let report = server.stop();
    assert_eq!(report.stats.queue_depth, 0);
}

#[test]
fn client_disconnect_mid_request_leaves_server_healthy() {
    let (server, addr) = start(quick_cfg());
    for _ in 0..5 {
        // A valid request whose reply has nowhere to go.
        let mut s = TcpStream::connect(addr).unwrap();
        let req = Request::Window {
            tree: 0,
            rect: Rect::new(0.0, 0.0, 64.0, 64.0),
            deadline_ms: 0,
        };
        write_frame(&mut s, &req.encode()).unwrap();
        drop(s); // gone before the response
    }
    assert_alive(addr);
    let report = server.stop();
    assert_eq!(report.stats.queue_depth, 0, "orphaned requests drained");
}

#[test]
fn overload_sheds_with_overloaded_not_a_panic() {
    // Tiny admission bound and a long batching window: the first admitted
    // query parks in the batcher, so concurrent arrivals exceed the bound
    // deterministically.
    let (server, addr) = start(ServeConfig {
        workers: 1,
        queue_bound: 2,
        batch_window: Duration::from_millis(40),
        max_batch: 1_000,
        ..quick_cfg()
    });

    let threads = 12;
    let per_thread = 4; // 48 offered >= 2x queue bound while batcher parks
    let barrier = Arc::new(Barrier::new(threads));
    let (mut shed, mut completed) = (0u64, 0u64);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    barrier.wait();
                    let (mut shed, mut completed) = (0u64, 0u64);
                    for _ in 0..per_thread {
                        match c.window(0, Rect::new(0.0, 0.0, 64.0, 64.0), 0) {
                            Ok(_) => completed += 1,
                            Err(ClientError::Unexpected(r)) if *r == Response::Overloaded => {
                                shed += 1
                            }
                            Err(e) => panic!("unexpected failure under load: {e}"),
                        }
                    }
                    (shed, completed)
                })
            })
            .collect();
        for h in handles {
            let (s, c) = h.join().unwrap();
            shed += s;
            completed += c;
        }
    });

    assert!(shed > 0, "no request was shed at 2x+ the queue bound");
    assert!(completed > 0, "admission starved everything");
    assert_eq!(shed + completed, (threads * per_thread) as u64);

    assert_alive(addr);
    let mut c = Client::connect(addr).unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(stats.shed, shed, "server-side shed count matches clients");
    let report = server.stop();
    assert_eq!(report.stats.queue_depth, 0);
}

#[test]
fn expired_deadline_returns_timeout_and_server_keeps_serving() {
    // The batching window (25 ms) exceeds the deadline (1 ms), so the
    // query is already expired when its batch executes — deterministic.
    let (server, addr) = start(ServeConfig {
        batch_window: Duration::from_millis(25),
        ..quick_cfg()
    });
    let mut c = Client::connect(addr).unwrap();
    let err = c.window(0, Rect::new(0.0, 0.0, 64.0, 64.0), 1);
    assert!(
        matches!(
            &err,
            Err(ClientError::Unexpected(r)) if **r == Response::DeadlineExceeded
        ),
        "expected DeadlineExceeded, got {err:?}"
    );
    // The same connection immediately serves an unbounded query.
    let got = c.window(0, Rect::new(0.0, 0.0, 10.0, 10.0), 0).unwrap();
    assert!(!got.is_empty());
    let stats = c.stats().unwrap();
    assert!(stats.timeouts >= 1);
    assert!(stats.completed >= 1);
    let report = server.stop();
    assert_eq!(report.stats.queue_depth, 0);
}

/// A server shared by all fuzz cases (leaked on purpose: the process ends
/// with the test binary).
fn fuzz_server() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let (server, addr) = start(quick_cfg());
        std::mem::forget(server);
        addr
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary byte blobs thrown at the socket — closed abruptly — must
    /// leave the server able to answer a real query.
    #[test]
    fn random_bytes_never_panic_the_server(blob in prop::collection::vec(0u8..255, 0..64)) {
        let addr = fuzz_server();
        let mut s = TcpStream::connect(addr).unwrap();
        let _ = s.write_all(&blob);
        drop(s);
        let mut c = Client::connect(addr).unwrap();
        prop_assert!(c.stats().is_ok(), "server died after blob {blob:?}");
    }
}
