//! Buffer-statistics regression tests for the out-of-core native join:
//! the stats in `NativeResult` must reflect real cache behavior, and a
//! starved cache must degrade performance — never correctness.

use psj_buffer::{Policy, SharedPageCache};
use psj_core::native::{run_native_join, run_native_join_with_cache, BufferConfig, NativeConfig};
use psj_core::{join_candidates, BufferOrg};
use psj_integration::harness::JoinScenario;
use psj_rtree::Node;
use std::collections::BTreeSet;

fn pair_set(pairs: &[(u64, u64)]) -> BTreeSet<(u64, u64)> {
    pairs.iter().copied().collect()
}

#[test]
fn second_join_on_warm_cache_has_zero_misses() {
    let s = JoinScenario::paper_maps("warm-cache", 3, 0.02);
    let cache: SharedPageCache<Node> = SharedPageCache::new(4, s.total_pages() * 2, 8, Policy::Lru);
    let mut cfg = NativeConfig::new(4);
    cfg.refine = false;

    let cold = run_native_join_with_cache(&s.a, &s.b, &cfg, &cache);
    let cold_stats = cold.buffer.expect("stats present");
    assert!(
        cold_stats.misses > 0,
        "cold run must fault pages: {cold_stats:?}"
    );
    assert!(
        cold_stats.misses as usize <= s.total_pages(),
        "a big cache never faults a page twice: {cold_stats:?}"
    );

    let warm = run_native_join_with_cache(&s.a, &s.b, &cfg, &cache);
    let warm_stats = warm.buffer.expect("stats present");
    assert_eq!(
        warm_stats.misses, 0,
        "warm run re-faulted pages: {warm_stats:?}"
    );
    assert_eq!(warm_stats.evictions, 0);
    assert!(warm_stats.requests() > 0, "warm run still counts accesses");
    assert_eq!(pair_set(&warm.pairs), pair_set(&cold.pairs));
}

#[test]
fn tiny_cache_thrashes_but_stays_correct() {
    let s = JoinScenario::paper_maps("tiny-cache", 3, 0.02);
    let oracle = pair_set(&join_candidates(&s.a, &s.b).candidates);
    for org in [BufferOrg::Local, BufferOrg::Global] {
        let buffer = BufferConfig {
            org,
            capacity_pages: 4,
            shards: 2,
            policy: Policy::Lru,
        };
        let mut cfg = NativeConfig::buffered(4, buffer);
        cfg.refine = false;
        let res = run_native_join(&s.a, &s.b, &cfg);
        assert_eq!(pair_set(&res.pairs), oracle, "{org:?}");
        let stats = res.buffer.unwrap();
        assert!(
            stats.misses as usize > s.total_pages(),
            "{org:?}: a 4-page cache must re-fault pages: {stats:?}"
        );
        assert!(
            stats.evictions > 0,
            "{org:?}: no evictions despite thrashing"
        );
    }
}

#[test]
fn stats_internally_consistent_across_configs() {
    let s = JoinScenario::dense_grid("stats-consistency", 900, 0.5);
    for (org, capacity) in [
        (BufferOrg::Global, s.total_pages() * 2),
        (BufferOrg::Global, 8),
        (BufferOrg::Local, 64),
    ] {
        let buffer = BufferConfig {
            org,
            capacity_pages: capacity,
            shards: 4,
            policy: Policy::Lru,
        };
        let mut cfg = NativeConfig::buffered(4, buffer);
        cfg.refine = false;
        let res = run_native_join(&s.a, &s.b, &cfg);
        let total = res.buffer.unwrap();
        // The aggregate equals the sum of the per-worker counters.
        let summed = res
            .buffer_per_worker
            .iter()
            .fold(psj_buffer::BufferStats::default(), |acc, w| acc.merged(w));
        assert_eq!(summed, total, "{org:?}/{capacity}");
        // requests() is definitionally hits + misses; each node pair visit
        // touches one page of each tree, so requests ≥ 2 × node pairs.
        assert!(
            total.requests() >= 2 * res.node_pairs,
            "{org:?}/{capacity}: {total:?} vs {} node pairs",
            res.node_pairs
        );
        if org == BufferOrg::Local {
            assert_eq!(total.hits_remote, 0, "local caches cannot hit remotely");
        }
    }
}

#[test]
fn unbuffered_run_reports_no_stats() {
    let s = JoinScenario::dense_grid("no-stats", 300, 0.5);
    let mut cfg = NativeConfig::new(2);
    cfg.refine = false;
    let res = run_native_join(&s.a, &s.b, &cfg);
    assert!(res.buffer.is_none());
    assert!(res.buffer_per_worker.is_empty());
}
