//! Shape guards: the paper's qualitative claims, checked at reduced scale
//! so `cargo test` protects the reproduction without the full experiment
//! runtime. EXPERIMENTS.md holds the paper-scale numbers.

use psj_core::{run_sim_join, Reassignment, SimConfig, VictimSelection};
use psj_datagen::{MapObject, Scenario};
use psj_rtree::{PagedTree, RTree};
use std::collections::HashMap;

fn workload(scale: f64) -> (PagedTree, PagedTree) {
    let (m1, m2) = Scenario::scaled(1996, scale).generate();
    let index = |objects: &[MapObject]| {
        let mut t = RTree::new();
        for o in objects {
            t.insert(o.mbr(), o.oid);
        }
        let geoms: HashMap<u64, psj_geom::Polyline> =
            objects.iter().map(|o| (o.oid, o.geom.clone())).collect();
        PagedTree::freeze_with_attrs(&t, |oid| geoms.get(&oid).cloned(), 1365)
    };
    (index(&m1), index(&m2))
}

const SCALE: f64 = 0.03;

/// Figure 5 shape: disk accesses fall with buffer size, and gd beats the
/// static variants at generous buffers.
#[test]
fn fig5_shape_buffer_size_monotonicity() {
    let (a, b) = workload(SCALE);
    let n = 8;
    let sizes = [24usize, 48, 96];
    let mut prev_gd = u64::MAX;
    for &pages in &sizes {
        let lsr = run_sim_join(&a, &b, &SimConfig::lsr(n, n, pages)).metrics;
        let gsrr = run_sim_join(&a, &b, &SimConfig::gsrr(n, n, pages)).metrics;
        let gd = run_sim_join(&a, &b, &SimConfig::gd(n, n, pages)).metrics;
        assert!(gd.disk_accesses <= prev_gd, "gd not monotone at {pages}");
        prev_gd = gd.disk_accesses;
        // gd does not read (meaningfully) more than the static global
        // variant. At this reduced scale the two trade a handful of pages
        // depending on task interleaving, so allow 1% jitter; the paper-scale
        // relation is checked in EXPERIMENTS.md.
        let slack = gsrr.disk_accesses / 100 + 1;
        assert!(
            gd.disk_accesses <= gsrr.disk_accesses + slack,
            "at {pages} pages: gd {} > gsrr {} + {slack}",
            gd.disk_accesses,
            gsrr.disk_accesses
        );
        // All variants compute the same join.
        assert_eq!(lsr.candidates, gd.candidates);
        assert_eq!(gsrr.candidates, gd.candidates);
    }
}

/// Figure 7 shape: for gd, "no reassignment" and "root level" coincide.
#[test]
fn fig7_shape_gd_none_equals_root() {
    let (a, b) = workload(SCALE);
    let mut none = SimConfig::gd(8, 8, 48);
    none.reassignment = Reassignment::None;
    let mut root = SimConfig::gd(8, 8, 48);
    root.reassignment = Reassignment::RootLevel;
    let m_none = run_sim_join(&a, &b, &none).metrics;
    let m_root = run_sim_join(&a, &b, &root).metrics;
    assert_eq!(m_none.response_time, m_root.response_time);
    assert_eq!(m_none.disk_accesses, m_root.disk_accesses);
    assert_eq!(
        m_root.reassignments, 0,
        "nothing stealable at root level under gd"
    );
}

/// Figure 7 shape: all-level reassignment tightens the finish spread for
/// the static-range variant.
#[test]
fn fig7_shape_reassignment_tightens_spread() {
    let (a, b) = workload(SCALE);
    let mut none = SimConfig::lsr(8, 8, 48);
    none.reassignment = Reassignment::None;
    let mut all = SimConfig::lsr(8, 8, 48);
    all.reassignment = Reassignment::AllLevels;
    let m_none = run_sim_join(&a, &b, &none).metrics;
    let m_all = run_sim_join(&a, &b, &all).metrics;
    let spread_none = m_none.max_finish_secs() - m_none.min_finish_secs();
    let spread_all = m_all.max_finish_secs() - m_all.min_finish_secs();
    assert!(
        spread_all < spread_none,
        "spread did not shrink: {spread_all:.2} !< {spread_none:.2}"
    );
    assert!(m_all.response_time <= m_none.response_time);
}

/// Figure 8 shape: victim selection never changes the result, and with a
/// global buffer it does not change the disk accesses either.
#[test]
fn fig8_shape_victim_selection_on_global_buffer() {
    let (a, b) = workload(SCALE);
    let mk = |victim| SimConfig {
        reassignment: Reassignment::AllLevels,
        victim,
        ..SimConfig::gd(8, 8, 48)
    };
    let ml = run_sim_join(&a, &b, &mk(VictimSelection::MostLoaded)).metrics;
    let arb = run_sim_join(&a, &b, &mk(VictimSelection::Arbitrary)).metrics;
    assert_eq!(ml.candidates, arb.candidates);
    assert_eq!(ml.disk_accesses, arb.disk_accesses);
}

/// Figures 9/10 shape: d = 1 saturates while d = n keeps scaling.
#[test]
fn fig9_shape_disk_bottleneck_vs_scaling() {
    let (a, b) = workload(SCALE);
    let t = |n: usize, d: usize| {
        run_sim_join(&a, &b, &SimConfig::best(n, d, 12 * n))
            .metrics
            .response_time
    };
    let t1 = t(1, 1);
    // d = 1: going from 4 to 16 processors barely helps (< 1.6x).
    let d1_4 = t(4, 1);
    let d1_16 = t(16, 1);
    assert!(
        (d1_4 as f64) / (d1_16 as f64) < 1.6,
        "single disk should saturate: t(4)={d1_4}, t(16)={d1_16}"
    );
    // d = n: 16 processors give at least 6x over 1.
    let dn_16 = t(16, 16);
    let speedup = t1 as f64 / dn_16 as f64;
    assert!(speedup > 6.0, "d=n speed-up only {speedup:.1}");
}
