//! Differential acceptance for the cluster: a router over N shards must
//! answer every query with exactly the set a single server over the whole
//! dataset produces — at every shard count, for windows, nearests, and
//! joins (pairs exactly once, never duplicated across shard overlap).

use psj_cluster::{plan_shards, Router, RouterConfig, ShardAddr};
use psj_datagen::Scenario;
use psj_geom::Rect;
use psj_rtree::{bulk::bulk_load_str, PagedTree, RTree};
use psj_serve::{Client, Request, Response, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

type Item = (Rect, u64);

fn items() -> (Vec<Item>, Vec<Item>) {
    let (m1, m2) = Scenario::scaled(20_2308, 0.01).generate();
    (
        m1.iter().map(|o| (o.mbr(), o.oid)).collect(),
        m2.iter().map(|o| (o.mbr(), o.oid)).collect(),
    )
}

fn freeze(items: &[Item]) -> Arc<PagedTree> {
    let tree = if items.is_empty() {
        RTree::new()
    } else {
        bulk_load_str(items)
    };
    Arc::new(PagedTree::freeze(&tree, |_| None))
}

fn serve_cfg(shard_id: u16) -> ServeConfig {
    ServeConfig {
        workers: 2,
        join_threads: 2,
        cache_pages: 2048,
        shard_id,
        read_timeout: Duration::from_millis(50),
        ..ServeConfig::default()
    }
}

fn start_single(items1: &[Item], items2: &[Item]) -> Server {
    Server::start(serve_cfg(0), vec![freeze(items1), freeze(items2)]).expect("bind single")
}

/// Starts one server per planned shard plus a router in front.
fn start_cluster(items1: &[Item], items2: &[Item], n: usize) -> (Vec<Server>, Router) {
    let plan = plan_shards(items1, items2, n);
    let buckets1 = plan.assign(items1);
    let buckets2 = plan.assign(items2);
    let mut servers = Vec::new();
    let mut shards = Vec::new();
    for (i, spec) in plan.shards.iter().enumerate() {
        let server = Server::start(
            serve_cfg(spec.id),
            vec![freeze(&buckets1[i]), freeze(&buckets2[i])],
        )
        .expect("bind shard");
        shards.push(ShardAddr {
            id: spec.id,
            addr: server.local_addr(),
            x_lo: spec.x_lo,
            x_hi: spec.x_hi,
        });
        servers.push(server);
    }
    let router = Router::start(RouterConfig {
        shards,
        ..RouterConfig::default()
    })
    .expect("bind router");
    (servers, router)
}

fn world_mbr(items: &[Item]) -> Rect {
    let mut m = items[0].0;
    for (r, _) in items {
        m = Rect::new(
            m.xl.min(r.xl),
            m.yl.min(r.yl),
            m.xu.max(r.xu),
            m.yu.max(r.yu),
        );
    }
    m
}

fn random_window(rng: &mut StdRng, mbr: &Rect, extent: f64) -> Rect {
    let w = (mbr.xu - mbr.xl) * extent;
    let h = (mbr.yu - mbr.yl) * extent;
    let x = mbr.xl + rng.random::<f64>() * (mbr.xu - mbr.xl - w);
    let y = mbr.yl + rng.random::<f64>() * (mbr.yu - mbr.yl - h);
    Rect::new(x, y, x + w, y + h)
}

#[test]
fn router_matches_single_node_at_every_shard_count() {
    let (items1, items2) = items();
    let oracle_srv = start_single(&items1, &items2);
    let mut oracle = Client::connect(oracle_srv.local_addr()).expect("connect oracle");
    let mbr = world_mbr(&items1);

    // The oracle join, used at every shard count below.
    let mut want_join = oracle.join(0, 1, false, 0).expect("oracle join");
    want_join.sort_unstable();
    assert!(!want_join.is_empty(), "scenario produced an empty join");

    for n in [1usize, 2, 3, 4] {
        let (servers, router) = start_cluster(&items1, &items2, n);
        let mut client = Client::connect(router.local_addr()).expect("connect router");

        // Windows: narrow ones (routed to a subset of shards) and wide
        // ones (scattered everywhere), each against the oracle.
        let mut rng = StdRng::seed_from_u64(n as u64);
        for i in 0..30 {
            let extent = if i % 3 == 0 { 0.5 } else { 0.04 };
            let rect = random_window(&mut rng, &mbr, extent);
            let tree = (i % 2) as u16;
            let mut got = client.window(tree, rect, 0).expect("router window");
            let mut want = oracle.window(tree, rect, 0).expect("oracle window");
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "shards={n} window {i} {rect:?}");
        }

        // Nearest: always scattered to every shard; merged list must be
        // bit-identical (same arithmetic on both paths).
        for i in 0..15 {
            let x = mbr.xl + rng.random::<f64>() * (mbr.xu - mbr.xl);
            let y = mbr.yl + rng.random::<f64>() * (mbr.yu - mbr.yl);
            let k = 1 + (i % 20) as u32;
            let got = client.nearest(0, x, y, k, 0).expect("router nearest");
            let want = oracle.nearest(0, x, y, k, 0).expect("oracle nearest");
            assert_eq!(got, want, "shards={n} nearest {i} ({x}, {y}) k={k}");
        }

        // Join: the router fans out with owner intervals; the gathered
        // pairs must equal the oracle's exactly — as a *list* after
        // sorting, so any cross-shard duplicate fails the comparison.
        let mut got_join = client.join(0, 1, false, 0).expect("router join");
        got_join.sort_unstable();
        assert_eq!(
            got_join.len(),
            want_join.len(),
            "shards={n}: pair count differs (duplicates or losses)"
        );
        assert_eq!(got_join, want_join, "shards={n}: join pairs differ");

        router.stop();
        for s in servers {
            s.stop();
        }
    }
    oracle_srv.stop();
}

/// The exactly-once guarantee lives on the shards: each keeps only pairs
/// whose reference point falls in its owned interval. Query every shard
/// directly with its owner interval and check the union reconstructs the
/// oracle with no pair claimed twice.
#[test]
fn shard_owner_intervals_partition_the_join() {
    let (items1, items2) = items();
    let oracle_srv = start_single(&items1, &items2);
    let mut oracle = Client::connect(oracle_srv.local_addr()).expect("connect oracle");
    let mut want = oracle.join(0, 1, false, 0).expect("oracle join");
    want.sort_unstable();
    oracle_srv.stop();

    let n = 3;
    let plan = plan_shards(&items1, &items2, n);
    let buckets1 = plan.assign(&items1);
    let buckets2 = plan.assign(&items2);
    let mut got: Vec<(u64, u64)> = Vec::new();
    let mut per_shard_total = 0usize;
    for (i, spec) in plan.shards.iter().enumerate() {
        let server = Server::start(
            serve_cfg(spec.id),
            vec![freeze(&buckets1[i]), freeze(&buckets2[i])],
        )
        .expect("bind shard");
        let mut c = Client::connect(server.local_addr()).expect("connect shard");
        let resp = c
            .request(&Request::Join {
                tree_a: 0,
                tree_b: 1,
                refine: false,
                deadline_ms: 0,
                owner: Some((spec.x_lo, spec.x_hi)),
            })
            .expect("shard join");
        let Response::Pairs(pairs) = resp else {
            panic!("shard {i} answered {resp:?}");
        };
        per_shard_total += pairs.len();
        got.extend(pairs);
        server.stop();
    }
    got.sort_unstable();
    assert_eq!(
        per_shard_total,
        want.len(),
        "owner intervals must partition the pair set (no pair twice)"
    );
    assert_eq!(got, want, "union of owned shard joins differs from oracle");
}
