//! Observability integration: multi-thread trace round-trips, histogram
//! quantile monotonicity under arbitrary samples, per-task attribution on
//! a traced native join, and the Prometheus exposition agreeing with the
//! binary stats report against a live server.

use proptest::prelude::*;
use psj_core::{try_run_native_join, BufferConfig, NativeConfig, RunControl};
use psj_geom::Rect;
use psj_obs::{validate_jsonl, Histogram, TraceSink};
use psj_rtree::{PagedTree, RTree};
use psj_serve::{Client, ServeConfig, Server};
use std::sync::Arc;
use std::time::Duration;

fn grid_tree(n: usize, offset: f64) -> PagedTree {
    let mut t = RTree::new();
    for i in 0..n {
        let x = (i % 64) as f64 + offset;
        let y = (i / 64) as f64 + offset;
        t.insert(Rect::new(x, y, x + 0.9, y + 0.9), i as u64);
    }
    PagedTree::freeze(&t, |_| None)
}

/// Eight threads record interleaved nested spans and instants; the drained
/// JSONL must parse line-by-line and pass span-nesting validation, with
/// nothing dropped and every event accounted for.
#[test]
fn trace_round_trips_across_threads() {
    const THREADS: usize = 8;
    const SPANS_PER_THREAD: usize = 200;
    let sink = TraceSink::new(1 << 16);
    sink.set_thread_name(0, "checker");
    let handles: Vec<_> = (0..THREADS)
        .map(|w| {
            let sink = Arc::clone(&sink);
            std::thread::spawn(move || {
                let mut tr = sink.tracer(w as u32 + 1);
                for i in 0..SPANS_PER_THREAD {
                    let outer = tr.now_ns();
                    let inner = tr.now_ns();
                    tr.instant("tick", "test", &[("i", i as u64)]);
                    tr.span("inner", "test", inner, &[]);
                    tr.span("outer", "test", outer, &[("i", i as u64)]);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(sink.dropped(), 0, "sink was sized for the whole workload");

    let mut out = Vec::new();
    let lines = sink.write_jsonl(&mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert_eq!(lines, text.lines().count());

    let summary = validate_jsonl(&text).expect("trace validates");
    assert_eq!(summary.lines, lines);
    assert_eq!(summary.spans, THREADS * SPANS_PER_THREAD * 2);
    assert_eq!(summary.instants, THREADS * SPANS_PER_THREAD);
    assert_eq!(summary.meta, 1, "one thread_name metadata record");
}

/// A traced buffered join yields one `task` span per attribution segment
/// and a trace that validates; the attribution totals reconcile with the
/// run's aggregate counters.
#[test]
fn traced_join_attribution_and_spans_agree() {
    let a = grid_tree(3000, 0.0);
    let b = grid_tree(2500, 0.4);
    let mut cfg = NativeConfig::new(4);
    cfg.buffer = Some(BufferConfig::global(256));
    let sink = TraceSink::new(1 << 20);
    let ctl = RunControl::default().with_trace(Arc::clone(&sink));
    let res = try_run_native_join(&a, &b, &cfg, &ctl).unwrap();

    assert!(!res.task_traces.is_empty());
    let candidates: u64 = res.task_traces.iter().map(|t| t.candidates).sum();
    assert_eq!(candidates, res.candidates as u64);
    let stats = res.buffer.as_ref().unwrap();
    let pages: u64 = res.task_traces.iter().map(|t| t.pages).sum();
    assert_eq!(pages, stats.requests());

    let mut out = Vec::new();
    sink.write_jsonl(&mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    validate_jsonl(&text).expect("trace validates");
    let task_spans = text
        .lines()
        .filter(|l| l.contains("\"name\":\"task\""))
        .count();
    assert_eq!(task_spans, res.task_traces.len());
    assert_eq!(task_spans, res.morsels, "one span per acquired morsel");
    let covered: u64 = res.task_traces.iter().map(|t| u64::from(t.tasks)).sum();
    assert!(
        covered as usize >= res.tasks,
        "morsel spans cover every phase-1 task"
    );
}

/// The Prometheus text scrape and the binary stats report read the same
/// atomics — after a mixed workload they must agree exactly.
#[test]
fn metrics_scrape_matches_stats_report_end_to_end() {
    let cfg = ServeConfig {
        workers: 2,
        join_threads: 2,
        cache_pages: 256,
        batch_window: Duration::from_millis(0),
        ..ServeConfig::default()
    };
    let trees = vec![
        Arc::new(grid_tree(2000, 0.0)),
        Arc::new(grid_tree(1500, 0.3)),
    ];
    let server = Server::start(cfg, trees).expect("bind loopback");
    let mut c = Client::connect(server.local_addr()).unwrap();

    c.window(0, Rect::new(0.0, 0.0, 8.0, 8.0), 0).unwrap();
    c.nearest(1, 5.0, 5.0, 3, 0).unwrap();
    c.join(0, 1, false, 0).unwrap();

    let stats = c.stats().unwrap();
    let text = c.metrics().unwrap();
    let value = |name: &str| -> u64 {
        text.lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .unwrap_or_else(|| panic!("{name} missing from exposition"))
            .parse()
            .unwrap()
    };
    assert_eq!(value("psj_requests_completed_total"), stats.completed);
    assert_eq!(value("psj_requests_shed_total"), stats.shed);
    assert_eq!(value("psj_worker_panics_total"), stats.worker_panics);
    assert_eq!(value("psj_request_latency_seconds_count"), stats.completed);
    assert!(value("psj_join_tasks_total") > 0, "join ran before scrape");
    server.stop();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any recorded sample set (including 0 and huge outliers), the
    /// histogram's quantile estimate is monotone non-decreasing in q and
    /// brackets the recorded range up to bucket resolution.
    #[test]
    fn histogram_quantiles_monotone_in_q(
        micros in prop::collection::vec(0u64..10_000_000_000, 1..200),
        qs in prop::collection::vec(0.0f64..1.0, 2..16),
    ) {
        let h = Histogram::new();
        for &m in &micros {
            h.record_micros(m);
        }
        prop_assert_eq!(h.count(), micros.len() as u64);
        let mut qs = qs;
        qs.push(0.0);
        qs.push(1.0);
        qs.sort_by(f64::total_cmp);
        let estimates: Vec<f64> = qs.iter().map(|&q| h.quantile_ms(q)).collect();
        for w in estimates.windows(2) {
            prop_assert!(
                w[0] <= w[1],
                "quantiles must be monotone in q: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
        for e in &estimates {
            prop_assert!(e.is_finite() && *e >= 0.0);
        }
    }
}
