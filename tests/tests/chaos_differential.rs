//! Chaos differential suite: joins under injected storage faults.
//!
//! Three invariants, each checked across thread counts and cache budgets:
//!
//! * **Transient-only plans are invisible** — retries absorb every injected
//!   blip, the result set is oracle-identical, and the cache's retry
//!   counter equals the number of injected faults exactly (fault injection
//!   is deterministic per `(seed, page)`).
//! * **Corruption is never silent** — a plan that permanently corrupts
//!   pages either leaves the join untouched (no corrupt page was fetched)
//!   with an oracle-identical result, or aborts with a typed
//!   `PageError::Corrupt`. Never a panic, never a wrong answer.
//! * **A poisoned tree degrades only itself** — a server with one
//!   disk-corrupted (lenient-loaded) tree answers the healthy tree
//!   normally, reports `StorageCorrupt` for queries needing poisoned
//!   pages, and surfaces nonzero corruption telemetry.

use psj_core::{
    join_refined, try_run_native_join, BufferConfig, NativeConfig, NativeError, RunControl,
};
use psj_geom::Rect;
use psj_rtree::{PagedTree, RTree};
use psj_serve::{Client, ClientError, Response, ServeConfig, Server, StorageErrorKind};
use psj_store::{FaultPlan, PageId, RetryPolicy, PAGE_RECORD_SIZE};
use std::collections::BTreeSet;
use std::sync::Arc;

fn tree(n: usize, offset: f64) -> PagedTree {
    let mut t = RTree::new();
    for i in 0..n {
        let x = (i % 50) as f64 + offset;
        let y = (i / 50) as f64 + offset;
        t.insert(Rect::new(x, y, x + 0.9, y + 0.9), i as u64);
    }
    PagedTree::freeze(&t, |_| None)
}

fn pair_set(v: &[(u64, u64)]) -> BTreeSet<(u64, u64)> {
    v.iter().copied().collect()
}

fn cfg(threads: usize, cache_pages: usize) -> NativeConfig {
    let mut cfg = NativeConfig::new(threads);
    cfg.refine = true;
    cfg.buffer = Some(BufferConfig::global(cache_pages));
    cfg
}

const THREADS: [usize; 2] = [1, 4];
const CACHES: [usize; 2] = [24, 4096];

#[test]
fn transient_only_plans_are_oracle_identical_with_exact_retry_counts() {
    let a = tree(1500, 0.0);
    let b = tree(1500, 0.45);
    let want = pair_set(&join_refined(&a, &b));
    assert!(want.len() > 500, "workload too trivial");
    for threads in THREADS {
        for cache in CACHES {
            let plan = Arc::new(FaultPlan::new(7).with_transient(0.4, 2));
            let ctl = RunControl::default()
                .with_fault(Arc::clone(&plan))
                .with_retry(RetryPolicy::attempts(4));
            let res = try_run_native_join(&a, &b, &cfg(threads, cache), &ctl)
                .unwrap_or_else(|e| panic!("threads={threads} cache={cache}: {e:?}"));
            assert_eq!(
                pair_set(&res.pairs),
                want,
                "threads={threads} cache={cache}: transient faults changed the result"
            );
            let stats = res.buffer.expect("buffered run reports cache stats");
            assert!(
                plan.transient_injected() > 0,
                "threads={threads} cache={cache}: plan injected nothing"
            );
            assert_eq!(
                stats.retries,
                plan.transient_injected(),
                "threads={threads} cache={cache}: every injected blip is one retry"
            );
        }
    }
}

#[test]
fn corruption_plans_give_typed_errors_never_wrong_answers() {
    let a = tree(1200, 0.0);
    let b = tree(1200, 0.45);
    let want = pair_set(&join_refined(&a, &b));
    let mut saw_error = false;
    for threads in THREADS {
        for cache in CACHES {
            for seed in 0..4u64 {
                let plan = Arc::new(FaultPlan::new(seed).with_flip(0.3));
                let ctl = RunControl::default().with_fault(plan);
                match try_run_native_join(&a, &b, &cfg(threads, cache), &ctl) {
                    Ok(res) => assert_eq!(
                        pair_set(&res.pairs),
                        want,
                        "threads={threads} cache={cache} seed={seed}: completed but wrong"
                    ),
                    Err(NativeError::Storage(je)) => {
                        saw_error = true;
                        assert!(je.error.is_corrupt(), "seed {seed}: {}", je.error);
                        assert!(je.failed_tasks >= 1);
                    }
                    Err(other) => panic!("seed {seed}: unexpected error {other}"),
                }
            }
        }
    }
    assert!(saw_error, "30% flips never hit any of 16 runs");
}

#[test]
fn total_corruption_always_aborts_with_corrupt_error() {
    let a = tree(600, 0.0);
    let b = tree(600, 0.45);
    let plan = Arc::new(FaultPlan::new(1).with_flip(1.0));
    let ctl = RunControl::default().with_fault(plan);
    match try_run_native_join(&a, &b, &cfg(2, 512), &ctl) {
        Err(NativeError::Storage(je)) => assert!(je.error.is_corrupt()),
        other => panic!("expected storage abort, got {other:?}"),
    }
}

#[test]
fn server_with_poisoned_tree_degrades_only_that_tree() {
    // Persist the victim, flip one byte inside a leaf page's payload on
    // disk, and lenient-load it back: the damaged page is poisoned, the
    // rest salvaged.
    let healthy = Arc::new(tree(2000, 0.0));
    let victim_src = tree(1600, 0.3);
    let mut path = std::env::temp_dir();
    path.push(format!("psj-chaos-victim-{}.idx", std::process::id()));
    victim_src.save_to(&path).unwrap();
    let leaf = (0..victim_src.num_pages())
        .rev()
        .find(|&n| victim_src.node(PageId(n as u32)).is_leaf())
        .unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let off = 30 + leaf * PAGE_RECORD_SIZE + 64;
    bytes[off] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    let loaded = PagedTree::load_from_lenient(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.corrupt_pages, vec![PageId(leaf as u32)]);
    let victim = Arc::new(loaded.tree);

    let server = Server::start(
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        vec![Arc::clone(&healthy), victim],
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let mut c = Client::connect(addr).unwrap();

    // The healthy tree answers exactly.
    let rect = Rect::new(0.0, 0.0, 12.0, 12.0);
    let mut got = c.window(0, rect, 0).expect("healthy tree serves");
    let mut want: Vec<u64> = healthy.window_query(&rect).iter().map(|e| e.oid).collect();
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want);

    // A full-extent window on the victim needs the poisoned leaf: a typed
    // corrupt reply, not a partial answer.
    let full = Rect::new(-100.0, -100.0, 1000.0, 1000.0);
    match c.window(1, full, 0) {
        Err(ClientError::Unexpected(r)) => match *r {
            Response::Storage { kind, ref msg } => {
                assert_eq!(kind, StorageErrorKind::Corrupt, "{msg}");
            }
            other => panic!("expected storage reply, got {other:?}"),
        },
        other => panic!("expected storage reply, got {other:?}"),
    }

    // A join touching the poisoned tree is refused with the same typed
    // error; the healthy tree keeps serving afterwards.
    match c.join(0, 1, true, 0) {
        Err(ClientError::Unexpected(r)) => match *r {
            Response::Storage { kind, .. } => assert_eq!(kind, StorageErrorKind::Corrupt),
            other => panic!("expected storage reply, got {other:?}"),
        },
        other => panic!("expected storage reply, got {other:?}"),
    }
    assert!(!c.window(0, rect, 0).expect("still serving").is_empty());

    let stats = c.stats().expect("stats");
    assert!(stats.storage_corrupt >= 2, "{stats:?}");
    assert!(stats.corrupt_pages_detected >= 1, "{stats:?}");
    server.stop();
}
