//! Coherence tests for the per-worker L1 front over the shared page cache.
//!
//! The L1 front may only serve a slot whose shard generation still matches
//! the shard: any eviction or quarantine in the shard must invalidate every
//! front slot mapped to it. These tests drive staleness directly — a page
//! source whose values change between fetches, evictions forced by a tiny
//! shard, and corruption-induced quarantine — and assert the front never
//! serves a value the shared cache would no longer serve. They also pin the
//! stats contract: after a flush, front hits land in `hits_l1` and every
//! access is accounted for in `requests()`.

use psj_buffer::{FaultSource, L1Front, PageSource, Policy, SharedAccess, SharedPageCache};
use psj_core::native::{run_native_join, BufferConfig, NativeConfig};
use psj_core::{join_candidates, BufferOrg};
use psj_integration::harness::JoinScenario;
use psj_store::{FaultPlan, PageError, PageId};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A source whose pages carry a version stamp: fetch number `k` of page `p`
/// returns `p * 1000 + k`. If the L1 front ever serves a pinned value after
/// the shared cache refetched the page, the version mismatch exposes it.
struct Versioned {
    fetches: Mutex<std::collections::HashMap<u32, u32>>,
    total: AtomicU64,
}

impl Versioned {
    fn new() -> Self {
        Versioned {
            fetches: Mutex::new(std::collections::HashMap::new()),
            total: AtomicU64::new(0),
        }
    }

    /// The latest version fetched for `page` (0 if never fetched).
    fn version(&self, page: PageId) -> u32 {
        *self.fetches.lock().unwrap().get(&page.0).unwrap_or(&0)
    }
}

impl PageSource for Versioned {
    type Item = u32;

    fn fetch_page(&self, page: PageId) -> Result<u32, PageError> {
        let mut m = self.fetches.lock().unwrap();
        let k = m.entry(page.0).or_insert(0);
        *k += 1;
        self.total.fetch_add(1, Ordering::Relaxed);
        Ok(page.0 * 1000 + *k)
    }

    fn page_count(&self) -> usize {
        1 << 20
    }
}

/// A source that serves a page cleanly `clean_fetches` times, then reports
/// it corrupt forever after — the shared cache quarantines it.
struct TurnsCorrupt {
    bad_page: PageId,
    clean_fetches: u32,
    seen: AtomicU64,
}

impl PageSource for TurnsCorrupt {
    type Item = u32;

    fn fetch_page(&self, page: PageId) -> Result<u32, PageError> {
        if page == self.bad_page {
            let n = self.seen.fetch_add(1, Ordering::Relaxed);
            if n >= self.clean_fetches as u64 {
                return Err(PageError::Corrupt {
                    page,
                    context: "l1-coherence test: page turned corrupt".into(),
                });
            }
        }
        Ok(page.0)
    }

    fn page_count(&self) -> usize {
        1 << 20
    }
}

#[test]
fn eviction_invalidates_front_slots() {
    // One shard of capacity 2: touching a third page evicts one of the
    // first two and bumps the shard generation.
    let cache: SharedPageCache<u32> = SharedPageCache::new(1, 2, 1, Policy::Lru);
    let src = Versioned::new();
    let mut l1 = L1Front::new(64);

    let (v, a) = l1.try_get(&cache, 0, PageId(1), &src).unwrap();
    assert_eq!((*v, a), (1001, SharedAccess::Miss));
    let (v, a) = l1.try_get(&cache, 0, PageId(1), &src).unwrap();
    assert_eq!(
        (*v, a),
        (1001, SharedAccess::HitLocal),
        "front absorbs repeat"
    );

    // Evict page 1 by filling the shard with pages 2 and 3.
    l1.try_get(&cache, 0, PageId(2), &src).unwrap();
    l1.try_get(&cache, 0, PageId(3), &src).unwrap();
    assert!(!cache.contains(PageId(1)), "page 1 must have been evicted");

    // The front still pins version 1001, but the generation bumped: the
    // probe must fall through to the shared cache and refetch version 1002.
    let (v, a) = l1.try_get(&cache, 0, PageId(1), &src).unwrap();
    assert_eq!(*v, 1002, "stale pinned value served after eviction");
    assert_eq!(a, SharedAccess::Miss);

    // Stats reconcile exactly: every try_get above is either a shared-cache
    // access or a pending front hit; after flush, requests() covers all.
    let shared_before_flush = cache.stats(0).requests();
    let pending = l1.pending_hits();
    l1.flush(&cache, 0);
    let stats = cache.stats(0);
    assert_eq!(stats.hits_l1, pending);
    assert_eq!(stats.requests(), shared_before_flush + pending);
    assert_eq!(stats.requests(), 5, "five try_get calls, five accesses");
}

#[test]
fn quarantine_invalidates_front_slots() {
    let bad = PageId(7);
    let src = TurnsCorrupt {
        bad_page: bad,
        clean_fetches: 1,
        seen: AtomicU64::new(0),
    };
    // Generous capacity: only the quarantine, not eviction, can bump the
    // generation here.
    let cache: SharedPageCache<u32> = SharedPageCache::new(1, 64, 1, Policy::Lru);
    let mut l1 = L1Front::new(16);

    let (v, _) = l1.try_get(&cache, 0, bad, &src).unwrap();
    assert_eq!(*v, 7);
    assert_eq!(
        l1.try_get(&cache, 0, bad, &src).unwrap().1,
        SharedAccess::HitLocal
    );

    // A fresh cache over the same source sees the now-corrupt fetch and
    // quarantines the page (the first cache never refetches a resident
    // page, so the corruption can only surface on a cold fill).
    let cache2: SharedPageCache<u32> = SharedPageCache::new(1, 64, 1, Policy::Lru);
    let mut l1b = L1Front::new(16);
    let err = l1b.try_get(&cache2, 0, bad, &src).unwrap_err();
    assert!(err.is_corrupt(), "expected corrupt, got {err:?}");
    assert!(cache2.is_quarantined(bad));

    // The front never cached the failed fill, and subsequent probes keep
    // reporting the quarantine rather than fabricating a value.
    let err = l1b.try_get(&cache2, 0, bad, &src).unwrap_err();
    assert!(err.is_corrupt());
    assert_eq!(
        l1b.pending_hits(),
        0,
        "no front hit may come from a failed fill"
    );
}

#[test]
fn generation_bump_from_quarantine_expires_sibling_slots() {
    // Page 3 turns corrupt after its first fetch; page 5 stays clean. Both
    // live in the single shard, so quarantining 3 must also expire the
    // front's slot for 5 (conservative per-shard invalidation).
    let src = TurnsCorrupt {
        bad_page: PageId(3),
        clean_fetches: 0,
        seen: AtomicU64::new(0),
    };
    let cache: SharedPageCache<u32> = SharedPageCache::new(1, 64, 1, Policy::Lru);
    let mut l1 = L1Front::new(16);

    l1.try_get(&cache, 0, PageId(5), &src).unwrap();
    assert_eq!(
        l1.try_get(&cache, 0, PageId(5), &src).unwrap().1,
        SharedAccess::HitLocal
    );
    let generation_before = cache.shard_generation(PageId(5));

    assert!(l1.try_get(&cache, 0, PageId(3), &src).is_err());
    assert!(cache.is_quarantined(PageId(3)));
    assert!(
        cache.shard_generation(PageId(5)) > generation_before,
        "quarantine must bump the shard generation"
    );

    // The slot for 5 is now stale-by-generation: the probe must fall
    // through to the shared cache instead of serving from the front.
    let pending_before = l1.pending_hits();
    let (v, _) = l1.try_get(&cache, 0, PageId(5), &src).unwrap();
    assert_eq!(*v, 5);
    assert_eq!(
        l1.pending_hits(),
        pending_before,
        "stale slot must not count a front hit"
    );
    // ...and the fall-through refilled the slot, so the next probe is a
    // front hit again.
    l1.try_get(&cache, 0, PageId(5), &src).unwrap();
    assert_eq!(l1.pending_hits(), pending_before + 1);
}

#[test]
fn native_join_l1_hits_reconcile_exactly() {
    // End-to-end: a buffered out-of-core join with the L1 front enabled must
    // produce the oracle pair set, and worker-level hits_l1 must equal the
    // sum over task traces — no front hit lost, none double counted.
    let s = JoinScenario::paper_maps("l1-reconcile", 3, 0.02);
    let oracle: BTreeSet<(u64, u64)> = join_candidates(&s.a, &s.b).candidates.into_iter().collect();
    for (org, capacity) in [
        (BufferOrg::Global, 8usize),
        (BufferOrg::Global, 256),
        (BufferOrg::Local, 32),
    ] {
        let buffer = BufferConfig {
            org,
            capacity_pages: capacity,
            shards: 4,
            policy: Policy::Lru,
        };
        let mut cfg = NativeConfig::buffered(3, buffer);
        cfg.refine = false;
        let res = run_native_join(&s.a, &s.b, &cfg);
        let got: BTreeSet<(u64, u64)> = res.pairs.iter().copied().collect();
        assert_eq!(got, oracle, "{org:?}/{capacity}: wrong pairs");
        let stats = res.buffer.expect("buffered run reports stats");
        let traced_l1: u64 = res.task_traces.iter().map(|t| t.hits_l1).sum();
        assert_eq!(
            traced_l1, stats.hits_l1,
            "{org:?}/{capacity}: task-trace L1 hits diverge from worker stats"
        );
        let traced_hits: u64 = res
            .task_traces
            .iter()
            .map(|t| t.hits_local + t.hits_l1 + t.hits_remote)
            .sum();
        assert_eq!(
            traced_hits,
            stats.hits_local + stats.hits_l1 + stats.hits_remote,
            "{org:?}/{capacity}: hit accounting diverges"
        );
    }
}

#[test]
fn fault_plan_churn_never_serves_stale_or_corrupt_values() {
    // A small cache (evictions every few accesses) over a version-stamped
    // source wrapped in a FaultPlan that marks some pages permanently
    // corrupt. Under a long pseudo-random access stream, every successful
    // lookup — L1 front hit or shared-cache fill — must return the page's
    // *latest* fetched version: a front hit is only legal while no eviction
    // or quarantine touched the shard, which is exactly when no refetch can
    // have happened. Corrupt pages must fail every time and quarantine.
    let plan = Arc::new(FaultPlan::new(42).with_flip(0.08));
    let src = FaultSource::new(Versioned::new(), Arc::clone(&plan));
    let cache: SharedPageCache<u32> = SharedPageCache::new(1, 8, 2, Policy::Lru);
    let mut l1 = L1Front::new(16);

    let mut state = 0x2545F491u64;
    let (mut oks, mut corrupts) = (0u64, 0u64);
    for _ in 0..4000 {
        // xorshift64: deterministic, clumpy enough to produce front hits.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let page = PageId((state % 48) as u32);
        match l1.try_get(&cache, 0, page, &src) {
            Ok((v, _)) => {
                oks += 1;
                let latest = src.inner().version(page);
                assert_eq!(
                    *v,
                    page.0 * 1000 + latest,
                    "stale or fabricated value for page {page:?}"
                );
            }
            Err(e) => {
                assert!(e.is_corrupt(), "only injected corruption may fail: {e:?}");
                assert!(cache.is_quarantined(page));
                corrupts += 1;
            }
        }
    }
    assert!(
        oks > 0 && corrupts > 0,
        "stream must exercise both outcomes"
    );
    assert!(plan.corrupt_injected() > 0);

    // Accounting closes: flushed front hits plus shared-cache accesses
    // cover exactly the successful lookups (failed fills surface the error
    // and are not counted as buffer-layer accesses — and never as L1 hits).
    let pending = l1.pending_hits();
    l1.flush(&cache, 0);
    let stats = cache.stats(0);
    assert_eq!(stats.hits_l1, pending);
    assert!(
        stats.hits_l1 > 0,
        "churn stream must still produce front hits"
    );
    assert_eq!(stats.requests(), oks);
    cache.check_invariants().expect("cache invariants hold");
}
