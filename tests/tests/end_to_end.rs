//! End-to-end integration: generator → R*-trees → all join executors agree.

use psj_core::{
    join_candidates, join_refined, run_native_join, run_sim_join, Assignment, NativeConfig,
    Reassignment, SimConfig, VictimSelection,
};
use psj_datagen::{MapObject, Scenario};
use psj_rtree::{PagedTree, RTree};
use std::collections::{BTreeSet, HashMap};

fn index(objects: &[MapObject]) -> PagedTree {
    let mut t = RTree::new();
    for o in objects {
        t.insert(o.mbr(), o.oid);
    }
    let geoms: HashMap<u64, psj_geom::Polyline> =
        objects.iter().map(|o| (o.oid, o.geom.clone())).collect();
    PagedTree::freeze(&t, move |oid| geoms.get(&oid).cloned())
}

fn workload(scale: f64, seed: u64) -> (PagedTree, PagedTree) {
    let (m1, m2) = Scenario::scaled(seed, scale).generate();
    (index(&m1), index(&m2))
}

fn as_set(v: &[(u64, u64)]) -> BTreeSet<(u64, u64)> {
    v.iter().copied().collect()
}

#[test]
fn trees_pass_verification_on_generated_data() {
    let (a, b) = workload(0.01, 11);
    a.verify().unwrap();
    b.verify().unwrap();
    assert!(a.len() > 1000);
    assert!(b.len() > 1000);
}

#[test]
fn sequential_filter_equals_brute_force() {
    let (m1, m2) = Scenario::scaled(3, 0.004).generate();
    let (a, b) = (index(&m1), index(&m2));
    let mut got = join_candidates(&a, &b).candidates;
    got.sort_unstable();
    let mut want = Vec::new();
    for x in &m1 {
        let mx = x.mbr();
        for y in &m2 {
            if mx.intersects(&y.mbr()) {
                want.push((x.oid, y.oid));
            }
        }
    }
    want.sort_unstable();
    assert_eq!(got, want);
    assert!(!want.is_empty(), "workload must produce candidates");
}

#[test]
fn refined_equals_brute_force_geometry() {
    let (m1, m2) = Scenario::scaled(5, 0.002).generate();
    let (a, b) = (index(&m1), index(&m2));
    let mut got = join_refined(&a, &b);
    got.sort_unstable();
    let mut want = Vec::new();
    for x in &m1 {
        let mx = x.mbr();
        for y in &m2 {
            if mx.intersects(&y.mbr()) && x.geom.intersects(&y.geom) {
                want.push((x.oid, y.oid));
            }
        }
    }
    want.sort_unstable();
    assert_eq!(got, want);
}

#[test]
fn simulated_executor_agrees_with_sequential_on_tiger_data() {
    let (a, b) = workload(0.01, 42);
    let want = as_set(&join_candidates(&a, &b).candidates);
    for cfg in [
        SimConfig::lsr(6, 6, 64),
        SimConfig::gsrr(6, 6, 64),
        SimConfig::gd(6, 6, 64),
        SimConfig::best(6, 6, 64),
    ] {
        let cfg = SimConfig {
            collect_candidates: true,
            ..cfg
        };
        let got = run_sim_join(&a, &b, &cfg).candidates.unwrap();
        assert_eq!(as_set(&got), want);
    }
}

#[test]
fn native_executor_agrees_with_sequential_on_tiger_data() {
    let (a, b) = workload(0.01, 42);
    let want = as_set(&join_candidates(&a, &b).candidates);
    for threads in [1, 3, 8] {
        let mut cfg = NativeConfig::new(threads);
        cfg.refine = false;
        let got = run_native_join(&a, &b, &cfg);
        assert_eq!(as_set(&got.pairs), want, "{threads} threads");
    }
}

#[test]
fn native_refined_is_subset_of_candidates() {
    let (a, b) = workload(0.005, 9);
    let refined = run_native_join(&a, &b, &NativeConfig::new(4));
    let candidates = as_set(&join_candidates(&a, &b).candidates);
    assert!(refined.pairs.len() <= candidates.len());
    for p in &refined.pairs {
        assert!(candidates.contains(p), "refined pair {p:?} not a candidate");
    }
    // Exact refinement on real line data must reject some false hits.
    assert!(
        refined.pairs.len() < candidates.len(),
        "expected at least one false hit among {} candidates",
        candidates.len()
    );
}

#[test]
fn sim_determinism_across_all_variants() {
    let (a, b) = workload(0.005, 123);
    for buffer_org in [psj_core::BufferOrg::Local, psj_core::BufferOrg::Global] {
        for assignment in [
            Assignment::StaticRange,
            Assignment::StaticRoundRobin,
            Assignment::Dynamic,
        ] {
            for reass in [
                Reassignment::None,
                Reassignment::RootLevel,
                Reassignment::AllLevels,
            ] {
                let cfg = SimConfig {
                    buffer_org,
                    assignment,
                    reassignment: reass,
                    victim: VictimSelection::Arbitrary,
                    seed: 7,
                    ..SimConfig::best(5, 3, 40)
                };
                let m1 = run_sim_join(&a, &b, &cfg).metrics;
                let m2 = run_sim_join(&a, &b, &cfg).metrics;
                assert_eq!(m1.response_time, m2.response_time);
                assert_eq!(m1.disk_accesses, m2.disk_accesses);
                assert_eq!(m1.proc_finish, m2.proc_finish);
                assert_eq!(m1.candidates, m2.candidates);
            }
        }
    }
}

#[test]
fn response_time_improves_with_parallelism_on_tiger_data() {
    let (a, b) = workload(0.02, 2024);
    let m1 = run_sim_join(&a, &b, &SimConfig::best(1, 1, 100)).metrics;
    let m4 = run_sim_join(&a, &b, &SimConfig::best(4, 4, 400)).metrics;
    let m16 = run_sim_join(&a, &b, &SimConfig::best(16, 16, 1600)).metrics;
    assert!(m4.response_time < m1.response_time);
    assert!(m16.response_time < m4.response_time);
    let s16 = m1.response_time as f64 / m16.response_time as f64;
    assert!(s16 > 6.0, "16-processor speed-up only {s16:.1}");
}
