//! Crash-safety acceptance for generation-based persistence: a writer
//! killed at *any* byte offset mid-write must leave the previous manifest
//! generation loadable byte-identically, and a subsequent save must
//! recover cleanly.
//!
//! The crash is simulated exactly where `atomic_write` is vulnerable: a
//! partial temp file (and a partial next-generation file) left beside the
//! index with the manifest not yet flipped. Offsets are a deterministic
//! seeded sweep so failures reproduce.

use psj_geom::Rect;
use psj_rtree::{generation_path, manifest_path, PagedTree, RTree};
use psj_store::tmp_path;
use std::path::{Path, PathBuf};

fn tree(n: usize, offset: f64) -> PagedTree {
    let mut t = RTree::new();
    for i in 0..n {
        let x = (i % 40) as f64 + offset;
        let y = (i / 40) as f64 + offset;
        t.insert(Rect::new(x, y, x + 0.9, y + 0.9), i as u64);
    }
    PagedTree::freeze(&t, |_| None)
}

fn scratch_base(tag: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("psj-crash-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.push("index.psjt");
    dir
}

fn cleanup(base: &Path) {
    if let Some(dir) = base.parent() {
        let _ = std::fs::remove_dir_all(dir);
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[test]
fn interrupted_writes_never_lose_the_previous_generation() {
    let base = scratch_base("interrupt");
    let v1 = tree(1200, 0.0);
    assert_eq!(v1.save_generation(&base).unwrap(), 1);
    let gen1_bytes = std::fs::read(generation_path(&base, 1)).unwrap();
    let manifest_bytes = std::fs::read(manifest_path(&base)).unwrap();

    // The bytes a completed generation-2 save would have produced.
    let v2 = tree(1500, 0.25);
    let full_v2 = {
        let mut p = std::env::temp_dir();
        p.push(format!("psj-crash-full-{}.psjt", std::process::id()));
        v2.save_to(&p).unwrap();
        let b = std::fs::read(&p).unwrap();
        std::fs::remove_file(&p).ok();
        b
    };

    let gen2 = generation_path(&base, 2);
    for round in 0..12u64 {
        // Crash mid-write at a seeded offset: sometimes inside the header,
        // sometimes mid-page, sometimes just short of complete.
        let cut = (splitmix64(round.wrapping_mul(0x9E37)) % full_v2.len() as u64) as usize;
        // (a) died while the temp file was being filled;
        std::fs::write(tmp_path(&gen2), &full_v2[..cut]).unwrap();
        // (b) or died after a rename that never got its manifest flip —
        //     model the worst case of a torn generation file too.
        std::fs::write(&gen2, &full_v2[..cut]).unwrap();

        // The manifest was never flipped, so generation 1 is still the
        // truth and must load byte-identically.
        assert_eq!(
            std::fs::read(manifest_path(&base)).unwrap(),
            manifest_bytes,
            "round {round}: manifest changed without a save"
        );
        let (loaded, generation) = PagedTree::load_latest(&base).unwrap();
        assert_eq!(generation, 1, "round {round}");
        assert_eq!(loaded.len(), v1.len(), "round {round}");
        assert_eq!(
            std::fs::read(generation_path(&base, 1)).unwrap(),
            gen1_bytes,
            "round {round}: generation 1 bytes disturbed"
        );
        std::fs::remove_file(&gen2).ok();
        std::fs::remove_file(tmp_path(&gen2)).ok();
    }

    // Recovery: the next save supersedes the debris and wins the manifest.
    std::fs::write(&gen2, &full_v2[..full_v2.len() / 2]).unwrap();
    assert_eq!(v2.save_generation(&base).unwrap(), 2);
    let (loaded, generation) = PagedTree::load_latest(&base).unwrap();
    assert_eq!(generation, 2);
    assert_eq!(loaded.len(), v2.len());
    // The rollback target (generation 1) survives the flip untouched.
    assert_eq!(
        std::fs::read(generation_path(&base, 1)).unwrap(),
        gen1_bytes
    );
    cleanup(&base);
}

#[test]
fn generations_advance_and_prune_under_repeated_saves() {
    let base = scratch_base("advance");
    for round in 1..=4u64 {
        let t = tree(600 + 100 * round as usize, 0.1 * round as f64);
        assert_eq!(t.save_generation(&base).unwrap(), round);
        let (loaded, generation) = PagedTree::load_latest(&base).unwrap();
        assert_eq!(generation, round);
        assert_eq!(loaded.len(), t.len());
        // Current and immediately previous generations exist; older are
        // pruned.
        assert!(generation_path(&base, round).exists());
        if round > 1 {
            assert!(generation_path(&base, round - 1).exists());
        }
        if round > 2 {
            assert!(!generation_path(&base, round - 2).exists());
        }
    }
    cleanup(&base);
}

#[test]
fn corrupt_current_generation_leaves_rollback_target_intact() {
    // If the *current* generation file is damaged after the flip, strict
    // load fails loudly — and the kept previous generation still loads.
    let base = scratch_base("rollback");
    let v1 = tree(900, 0.0);
    let v2 = tree(1100, 0.3);
    v1.save_generation(&base).unwrap();
    v2.save_generation(&base).unwrap();
    let gen2 = generation_path(&base, 2);
    let mut bytes = std::fs::read(&gen2).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&gen2, &bytes).unwrap();
    assert!(
        PagedTree::load_latest(&base).is_err(),
        "corruption detected"
    );
    let fallback = PagedTree::load_from(&generation_path(&base, 1)).unwrap();
    assert_eq!(fallback.len(), v1.len());
    cleanup(&base);
}
