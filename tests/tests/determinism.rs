//! Determinism guards: the native join's result *set* is a pure function of
//! the inputs — independent of thread count, assignment strategy, scheduling
//! noise, and repetition.

use psj_core::native::{run_native_join, NativeConfig};
use psj_core::Assignment;
use psj_integration::harness::JoinScenario;
use std::collections::BTreeSet;

fn pair_set(pairs: &[(u64, u64)]) -> BTreeSet<(u64, u64)> {
    pairs.iter().copied().collect()
}

#[test]
fn native_join_is_thread_count_and_assignment_invariant() {
    let scenario = JoinScenario::paper_maps("determinism", 7, 0.02);
    let mut reference: Option<BTreeSet<(u64, u64)>> = None;
    for assignment in [
        Assignment::Dynamic,
        Assignment::StaticRange,
        Assignment::StaticRoundRobin,
    ] {
        for threads in [1, 2, 4, 8] {
            let mut cfg = NativeConfig::new(threads);
            cfg.assignment = assignment;
            cfg.refine = false;
            let got = pair_set(&run_native_join(&scenario.a, &scenario.b, &cfg).pairs);
            match &reference {
                None => {
                    assert!(!got.is_empty(), "degenerate workload");
                    reference = Some(got);
                }
                Some(want) => {
                    assert_eq!(&got, want, "{assignment:?} × {threads} threads diverged");
                }
            }
        }
    }
}

#[test]
fn repeated_runs_agree_exactly() {
    let scenario = JoinScenario::clustered("determinism-repeat", 11, 1000);
    let cfg = {
        let mut c = NativeConfig::new(4);
        c.refine = false;
        c
    };
    let first = pair_set(&run_native_join(&scenario.a, &scenario.b, &cfg).pairs);
    for round in 0..5 {
        let again = pair_set(&run_native_join(&scenario.a, &scenario.b, &cfg).pairs);
        assert_eq!(again, first, "round {round} diverged");
    }
}

#[test]
fn refined_join_is_thread_count_invariant() {
    let scenario = JoinScenario::paper_maps("determinism-refined", 23, 0.015);
    let want = {
        let cfg = NativeConfig::new(1);
        pair_set(&run_native_join(&scenario.a, &scenario.b, &cfg).pairs)
    };
    for threads in [2, 4, 8] {
        let cfg = NativeConfig::new(threads);
        let got = pair_set(&run_native_join(&scenario.a, &scenario.b, &cfg).pairs);
        assert_eq!(got, want, "{threads} threads");
    }
}
