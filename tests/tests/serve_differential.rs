//! Differential acceptance for psj-serve: every query answered by the
//! server must return exactly the same result set as a direct
//! psj_rtree / psj_core call on the same trees, swept over concurrent
//! client threads × batched/unbatched dispatch × cache budgets.

use psj_geom::{Point, Rect};
use psj_integration::harness::JoinScenario;
use psj_rtree::PagedTree;
use psj_serve::{Client, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

fn scenario_trees() -> Vec<Arc<PagedTree>> {
    let s = JoinScenario::paper_maps("serve-differential", 20_2306, 0.02);
    vec![Arc::new(s.a), Arc::new(s.b)]
}

fn random_window(rng: &mut StdRng, mbr: &Rect, extent: f64) -> Rect {
    let w = (mbr.xu - mbr.xl) * extent;
    let h = (mbr.yu - mbr.yl) * extent;
    let x = mbr.xl + rng.random::<f64>() * (mbr.xu - mbr.xl - w);
    let y = mbr.yl + rng.random::<f64>() * (mbr.yu - mbr.yl - h);
    Rect::new(x, y, x + w, y + h)
}

/// One client thread: seeded window + nearest queries, each checked
/// against the direct in-process call.
fn client_workload(
    addr: std::net::SocketAddr,
    trees: &[Arc<PagedTree>],
    seed: u64,
    requests: usize,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut client = Client::connect(addr).expect("connect");
    for i in 0..requests {
        let tree = rng.random_range(0..trees.len());
        let t = &trees[tree];
        if rng.random_bool(0.7) {
            let rect = random_window(&mut rng, &t.mbr(), 0.08);
            let mut got = client.window(tree as u16, rect, 0).expect("window");
            let mut want: Vec<u64> = t.window_query(&rect).iter().map(|e| e.oid).collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(
                got, want,
                "seed {seed} request {i} tree {tree} window {rect:?}"
            );
        } else {
            let mbr = t.mbr();
            let p = Point::new(
                mbr.xl + rng.random::<f64>() * (mbr.xu - mbr.xl),
                mbr.yl + rng.random::<f64>() * (mbr.yu - mbr.yl),
            );
            let k = rng.random_range(1..20usize);
            let got = client
                .nearest(tree as u16, p.x, p.y, k as u32, 0)
                .expect("nearest");
            let want = t.nearest_neighbors(&p, k);
            assert_eq!(got.len(), want.len(), "seed {seed} request {i}");
            // Distances are uniquely ordered with overwhelming probability
            // on continuous data; compare the distance sequence and the
            // oid multiset (ties may legally permute oids).
            for ((gd, _), (wd, _)) in got.iter().zip(&want) {
                assert_eq!(gd, wd, "seed {seed} request {i} k {k}");
            }
            let got_oids: BTreeSet<u64> = got.iter().map(|(_, o)| *o).collect();
            let want_oids: BTreeSet<u64> = want.iter().map(|(_, e)| e.oid).collect();
            assert_eq!(got_oids, want_oids, "seed {seed} request {i}");
        }
    }
}

fn run_sweep_point(batch_window: Duration, cache_pages: usize) {
    let trees = scenario_trees();
    let cfg = ServeConfig {
        workers: 4,
        batch_window,
        cache_pages,
        cache_shards: 4,
        join_threads: 2,
        read_timeout: Duration::from_millis(50),
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, trees.clone()).expect("bind");
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        for c in 0..4u64 {
            let trees = &trees;
            scope.spawn(move || client_workload(addr, trees, 1_000 + c, 40));
        }
    });

    // One join request on top of the query mix, checked as a pair set.
    let mut client = Client::connect(addr).expect("connect");
    let got: BTreeSet<(u64, u64)> = client
        .join(0, 1, true, 0)
        .expect("join")
        .into_iter()
        .collect();
    let want: BTreeSet<(u64, u64)> = psj_core::join_refined(&trees[0], &trees[1])
        .into_iter()
        .collect();
    assert_eq!(got, want, "join through the server");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.shed, 0, "differential sweep must not shed");
    assert_eq!(stats.timeouts, 0, "no deadlines were set");
    assert!(stats.completed > 4 * 40, "4 clients x 40 queries + 1 join");
    if !batch_window.is_zero() {
        assert!(stats.batches > 0, "batched mode never built a batch");
        assert!(stats.batched_queries >= stats.batches);
    }
    assert!(
        stats.cache_requests > 0 && stats.cache_hits > 0,
        "queries must run through the shared cache: {stats:?}"
    );
    let report = server.stop();
    assert_eq!(report.stats.queue_depth, 0, "clean drain");
}

#[test]
fn unbatched_large_cache_matches_direct() {
    run_sweep_point(Duration::ZERO, 4096);
}

#[test]
fn batched_large_cache_matches_direct() {
    run_sweep_point(Duration::from_millis(2), 4096);
}

#[test]
fn unbatched_tiny_cache_matches_direct() {
    // Far below the working set: correctness under eviction pressure.
    run_sweep_point(Duration::ZERO, 16);
}

#[test]
fn batched_tiny_cache_matches_direct() {
    run_sweep_point(Duration::from_millis(2), 16);
}
