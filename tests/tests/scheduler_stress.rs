//! Scheduler stress battery for the morsel-driven native join.
//!
//! Every test pins the executor against the sequential oracle *byte for
//! byte* (Vec equality, not set equality): the deterministic merge of
//! worker-local morsel outputs must make thread count, assignment,
//! steal policy, and steal interleaving invisible in the output. On top
//! of that, each run's `TaskTrace` ledger must account for every morsel
//! exactly once and reconcile the steal counter with per-morsel origins.

use psj_core::{
    join_candidates, try_run_native_join, Assignment, CancelToken, NativeConfig, NativeError,
    NativeResult, RunControl, StealPolicy, TaskOrigin,
};
use psj_desim::splitmix64;
use psj_integration::harness::JoinScenario;
use std::time::{Duration, Instant};

/// Invariants every completed run must satisfy, regardless of schedule:
/// morsels executed exactly once (no losses, no duplicates), the morsel
/// task counts cover at least every phase-1 task, and the steal counter
/// equals the number of morsels whose trace records a steal origin.
fn assert_ledger(res: &NativeResult, ctx: &str) {
    let mut ids: Vec<u32> = res.task_traces.iter().map(|t| t.morsel).collect();
    ids.sort_unstable();
    let want: Vec<u32> = (0..res.morsels as u32).collect();
    assert_eq!(ids, want, "{ctx}: morsels lost or executed twice");

    let covered: u64 = res.task_traces.iter().map(|t| u64::from(t.tasks)).sum();
    assert!(
        covered as usize >= res.tasks,
        "{ctx}: morsel task counts ({covered}) do not cover phase 1 ({})",
        res.tasks
    );

    let stolen = res
        .task_traces
        .iter()
        .filter(|t| t.origin == TaskOrigin::Steal)
        .count() as u64;
    assert_eq!(
        res.steals, stolen,
        "{ctx}: steal counter disagrees with trace origins"
    );
}

fn run(scenario: &JoinScenario, cfg: &NativeConfig) -> NativeResult {
    try_run_native_join(&scenario.a, &scenario.b, cfg, &RunControl::default())
        .expect("uncancelled run completes")
}

/// Threads × assignment × workload: the full matrix must be byte-identical
/// to the oracle with a clean morsel ledger. Covers both a roughly uniform
/// workload and a clustered one whose skew forces uneven morsel costs.
#[test]
fn stress_matrix_is_byte_identical_with_exact_morsel_accounting() {
    let workloads = [
        JoinScenario::paper_maps("stress-uniform", 29, 0.015),
        JoinScenario::clustered("stress-skewed", 31, 1200),
    ];
    for scenario in &workloads {
        let oracle = join_candidates(&scenario.a, &scenario.b).candidates;
        assert!(!oracle.is_empty(), "degenerate workload");
        for assignment in [
            Assignment::Dynamic,
            Assignment::StaticRange,
            Assignment::StaticRoundRobin,
        ] {
            for threads in [1, 2, 4, 8] {
                let mut cfg = NativeConfig::new(threads);
                cfg.assignment = assignment;
                cfg.refine = false;
                let res = run(scenario, &cfg);
                let ctx = format!("{assignment:?} t={threads}");
                assert_eq!(res.pairs, oracle, "{ctx}: output diverged from oracle");
                assert_ledger(&res, &ctx);
            }
        }
    }
}

/// Seeded randomized sweep over the whole configuration space: thread
/// count, assignment, steal policy, morsel budget, and phase-1 granularity
/// all derived from a deterministic stream. Every draw must reproduce the
/// oracle byte for byte with a clean ledger.
#[test]
fn randomized_configurations_never_change_the_output() {
    let scenario = JoinScenario::paper_maps("stress-random", 37, 0.015);
    let oracle = join_candidates(&scenario.a, &scenario.b).candidates;
    let assignments = [
        Assignment::Dynamic,
        Assignment::StaticRange,
        Assignment::StaticRoundRobin,
    ];
    let policies = [
        StealPolicy::Busiest,
        StealPolicy::RoundRobin,
        StealPolicy::Seeded,
    ];
    for round in 0..24u64 {
        let draw = |salt: u64| splitmix64(round ^ (salt << 32));
        let threads = [1, 2, 4, 8][(draw(1) % 4) as usize];
        let mut cfg = NativeConfig::new(threads);
        cfg.assignment = assignments[(draw(2) % 3) as usize];
        cfg.steal = policies[(draw(3) % 3) as usize];
        cfg.steal_seed = draw(4);
        cfg.morsel_candidates = [0, 16, 64, 256][(draw(5) % 4) as usize];
        cfg.min_tasks_factor = [1, 4, 16][(draw(6) % 3) as usize];
        cfg.refine = false;
        let res = run(&scenario, &cfg);
        let ctx = format!(
            "round {round}: t={threads} {:?} {} budget={} mtf={}",
            cfg.assignment,
            cfg.steal.short(),
            cfg.morsel_candidates,
            cfg.min_tasks_factor
        );
        assert_eq!(res.pairs, oracle, "{ctx}: output diverged from oracle");
        assert_ledger(&res, &ctx);
    }
}

/// Satellite 4 — merge determinism under adversarial steal interleavings:
/// the seeded `StealOrder` shim perturbs victim selection per seed, and a
/// static round-robin deal at 4 threads forces the steal path. Every seed
/// must yield the identical byte sequence.
#[test]
fn seeded_steal_interleavings_preserve_byte_identical_output() {
    let scenario = JoinScenario::clustered("stress-seeded", 41, 1500);
    let oracle = join_candidates(&scenario.a, &scenario.b).candidates;
    let mut any_steals = 0u64;
    for seed in 0..12u64 {
        let mut cfg = NativeConfig::new(4);
        cfg.assignment = Assignment::StaticRoundRobin;
        cfg.steal = StealPolicy::Seeded;
        cfg.steal_seed = splitmix64(seed);
        cfg.refine = false;
        let res = run(&scenario, &cfg);
        assert_eq!(res.pairs, oracle, "seed {seed}: output diverged");
        assert_ledger(&res, &format!("seed {seed}"));
        any_steals += res.steals;
    }
    assert!(
        any_steals > 0,
        "the skewed round-robin deal must force at least one steal across seeds"
    );
}

/// The refined join (exact geometry step) is byte-identical too — the
/// merge argument does not depend on refinement being off.
#[test]
fn refined_output_is_byte_identical_across_schedules() {
    let scenario = JoinScenario::paper_maps("stress-refined", 43, 0.012);
    let want = {
        let cfg = NativeConfig::new(1);
        run(&scenario, &cfg).pairs
    };
    assert!(!want.is_empty());
    for threads in [2, 8] {
        for assignment in [Assignment::Dynamic, Assignment::StaticRoundRobin] {
            let mut cfg = NativeConfig::new(threads);
            cfg.assignment = assignment;
            let res = run(&scenario, &cfg);
            assert_eq!(
                res.pairs, want,
                "refined {assignment:?} t={threads} diverged"
            );
        }
    }
}

/// Clean drain under cancellation: a deadline placed anywhere inside the
/// run must produce either a complete, oracle-identical result or a clean
/// `Cancelled` error — never a hang, panic, or partial output. After each
/// cancelled attempt the same inputs must still join to completion.
#[test]
fn cancellation_drains_cleanly_at_random_deadlines() {
    let scenario = JoinScenario::paper_maps("stress-cancel", 47, 0.02);
    let oracle = join_candidates(&scenario.a, &scenario.b).candidates;
    let mut cfg = NativeConfig::new(4);
    cfg.refine = false;

    // Calibrate: a full run's duration bounds the deadline draw range.
    let full = run(&scenario, &cfg);
    assert_eq!(full.pairs, oracle);
    let budget = full.elapsed.max(Duration::from_millis(1));

    let mut cancelled = 0u32;
    for round in 0..12u64 {
        // Deadlines spread over [0, ~budget): early draws cancel before
        // workers spawn, late draws land mid-drain.
        let frac = (splitmix64(round) % 1000) as f64 / 1000.0;
        let deadline = Instant::now() + budget.mul_f64(frac);
        let token = CancelToken::with_deadline(deadline);
        let ctl = RunControl::default().with_cancel(&token);
        match try_run_native_join(&scenario.a, &scenario.b, &cfg, &ctl) {
            Ok(res) => {
                assert_eq!(res.pairs, oracle, "round {round}: completed run diverged");
                assert_ledger(&res, &format!("round {round}"));
            }
            Err(NativeError::Cancelled) => cancelled += 1,
            Err(e) => panic!("round {round}: unexpected error {e}"),
        }
        // The executor must be reusable immediately after a cancellation.
        let again = run(&scenario, &cfg);
        assert_eq!(
            again.pairs, oracle,
            "round {round}: post-cancel run diverged"
        );
    }
    println!("cancelled {cancelled}/12 attempts");
}
