//! Integration tests for persistence, the shared-nothing executor, and the
//! parallel query batch API on generated TIGER-like data.

use psj_core::{
    join_candidates, parallel_nn_queries, parallel_window_queries, run_native_join,
    run_sharded_join, NativeConfig, Placement, ShardedConfig,
};
use psj_datagen::io::{load_map, save_map};
use psj_datagen::{MapObject, Scenario};
use psj_geom::{Point, Rect};
use psj_rtree::{PagedTree, RTree};
use std::collections::{BTreeSet, HashMap};

fn index(objects: &[MapObject]) -> PagedTree {
    let mut t = RTree::new();
    for o in objects {
        t.insert(o.mbr(), o.oid);
    }
    let geoms: HashMap<u64, psj_geom::Polyline> =
        objects.iter().map(|o| (o.oid, o.geom.clone())).collect();
    PagedTree::freeze(&t, move |oid| geoms.get(&oid).cloned())
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("psj-it-{}-{}", std::process::id(), name));
    p
}

fn as_set(v: &[(u64, u64)]) -> BTreeSet<(u64, u64)> {
    v.iter().copied().collect()
}

#[test]
fn full_pipeline_generate_save_load_join() {
    // The complete CLI pipeline, via the library API: generate → save maps →
    // load maps → index → save trees → load trees → join.
    let (m1, m2) = Scenario::scaled(77, 0.005).generate();
    let p1 = tmp("map1");
    let p2 = tmp("map2");
    save_map(&m1, &p1).unwrap();
    save_map(&m2, &p2).unwrap();
    let l1 = load_map(&p1).unwrap();
    let l2 = load_map(&p2).unwrap();
    std::fs::remove_file(&p1).ok();
    std::fs::remove_file(&p2).ok();
    assert_eq!(l1, m1);
    assert_eq!(l2, m2);

    let a = index(&l1);
    let b = index(&l2);
    let t1 = tmp("tree1");
    let t2 = tmp("tree2");
    a.save_to(&t1).unwrap();
    b.save_to(&t2).unwrap();
    let la = PagedTree::load_from(&t1).unwrap();
    let lb = PagedTree::load_from(&t2).unwrap();
    std::fs::remove_file(&t1).ok();
    std::fs::remove_file(&t2).ok();

    let fresh = run_native_join(&a, &b, &NativeConfig::new(4));
    let loaded = run_native_join(&la, &lb, &NativeConfig::new(4));
    assert_eq!(as_set(&fresh.pairs), as_set(&loaded.pairs));
    assert!(!fresh.pairs.is_empty());
}

#[test]
fn sharded_executor_agrees_on_tiger_data() {
    let (m1, m2) = Scenario::scaled(31, 0.006).generate();
    let a = index(&m1);
    let b = index(&m2);
    let want = as_set(&join_candidates(&a, &b).candidates);
    for placement in [Placement::RoundRobin, Placement::Contiguous] {
        let cfg = ShardedConfig {
            placement,
            collect_candidates: true,
            ..ShardedConfig::new(5, 24)
        };
        let res = run_sharded_join(&a, &b, &cfg);
        assert_eq!(
            as_set(res.candidates.as_ref().unwrap()),
            want,
            "{placement:?}"
        );
        assert!(res.metrics.join.disk_accesses > 0);
    }
}

#[test]
fn sharded_placement_affects_network_traffic() {
    let (m1, m2) = Scenario::scaled(32, 0.01).generate();
    let a = index(&m1);
    let b = index(&m2);
    let rr = run_sharded_join(&a, &b, &ShardedConfig::new(8, 32)).metrics;
    let contig = run_sharded_join(
        &a,
        &b,
        &ShardedConfig {
            placement: Placement::Contiguous,
            ..ShardedConfig::new(8, 32)
        },
    )
    .metrics;
    // Both do remote work; the point is they are measurably different
    // systems, not that one always wins.
    assert!(rr.remote_requests > 0);
    assert!(contig.remote_requests > 0);
    assert_ne!(
        (rr.network_bytes, rr.join.response_time),
        (contig.network_bytes, contig.join.response_time)
    );
}

#[test]
fn parallel_queries_on_tiger_data() {
    let (m1, _) = Scenario::scaled(55, 0.01).generate();
    let tree = index(&m1);
    let world = tree.mbr();
    let windows: Vec<Rect> = (0..30)
        .map(|k| {
            let fx = (k % 6) as f64 / 6.0;
            let fy = (k / 6) as f64 / 5.0;
            Rect::new(
                world.xl + world.width() * fx,
                world.yl + world.height() * fy,
                world.xl + world.width() * (fx + 0.2),
                world.yl + world.height() * (fy + 0.25),
            )
        })
        .collect();
    let par = parallel_window_queries(&tree, &windows, 4);
    let total: usize = par.iter().map(Vec::len).sum();
    assert!(total > 0, "windows over the data must hit something");
    for (i, w) in windows.iter().enumerate() {
        assert_eq!(par[i].len(), tree.window_query(w).len(), "window {i}");
    }

    let queries: Vec<Point> = (0..20)
        .map(|k| Point::new(world.xl + k as f64, world.yl + (k % 7) as f64))
        .collect();
    let nn = parallel_nn_queries(&tree, &queries, 3, 4);
    assert_eq!(nn.len(), queries.len());
    for r in &nn {
        assert_eq!(r.len(), 3);
        assert!(r.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}

#[test]
fn deletion_then_join_sees_fewer_pairs() {
    let (m1, m2) = Scenario::scaled(60, 0.004).generate();
    let mut t1 = RTree::new();
    for o in &m1 {
        t1.insert(o.mbr(), o.oid);
    }
    let b = index(&m2);

    let full = {
        let a = PagedTree::freeze(&t1, |_| None);
        join_candidates(&a, &b).candidates.len()
    };
    // Remove half of map1 and re-freeze.
    for o in m1.iter().take(m1.len() / 2) {
        assert!(t1.delete(&o.mbr(), o.oid).is_some());
    }
    t1.check_invariants().unwrap();
    let half = {
        let a = PagedTree::freeze(&t1, |_| None);
        join_candidates(&a, &b).candidates.len()
    };
    assert!(
        half < full,
        "deleting objects must shrink the join ({half} !< {full})"
    );
}
