//! Robustness acceptance for the cluster router: killed shards degrade
//! answers to `Partial` (never hangs, never malformed frames), faulty
//! shards are isolated, and a restarted shard rejoins without touching
//! the router.
//!
//! The shard processes are real OS processes (`shard_harness`, a bin in
//! this package) so the tests can SIGKILL them mid-run.

use psj_cluster::{plan_shards, HealthPolicy, Router, RouterConfig, ShardAddr, ShardPlan};
use psj_datagen::Scenario;
use psj_geom::Rect;
use psj_rtree::{bulk::bulk_load_str, PagedTree, RTree};
use psj_serve::{Client, ClientError, Response, ServeConfig, Server};
use std::io::{BufRead, BufReader, Read};
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

type Item = (Rect, u64);

fn items() -> (Vec<Item>, Vec<Item>) {
    let (m1, m2) = Scenario::scaled(20_2309, 0.005).generate();
    (
        m1.iter().map(|o| (o.mbr(), o.oid)).collect(),
        m2.iter().map(|o| (o.mbr(), o.oid)).collect(),
    )
}

fn freeze(items: &[Item]) -> PagedTree {
    let tree = if items.is_empty() {
        RTree::new()
    } else {
        bulk_load_str(items)
    };
    PagedTree::freeze(&tree, |_| None)
}

fn world_mbr(items: &[Item]) -> Rect {
    let mut m = items[0].0;
    for (r, _) in items {
        m = Rect::new(
            m.xl.min(r.xl),
            m.yl.min(r.yl),
            m.xu.max(r.xu),
            m.yu.max(r.yu),
        );
    }
    m
}

/// Fresh scratch dir under the system temp dir, unique per test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("psj_cluster_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Writes per-shard tree files for a plan; returns `trees` argument
/// strings, one per shard.
fn write_shard_trees(
    dir: &Path,
    plan: &ShardPlan,
    items1: &[Item],
    items2: &[Item],
) -> Vec<String> {
    let buckets1 = plan.assign(items1);
    let buckets2 = plan.assign(items2);
    (0..plan.len())
        .map(|i| {
            let pa = dir.join(format!("shard{i}_a.psjt"));
            let pb = dir.join(format!("shard{i}_b.psjt"));
            freeze(&buckets1[i]).save_to(&pa).expect("save shard tree");
            freeze(&buckets2[i]).save_to(&pb).expect("save shard tree");
            format!("{},{}", pa.display(), pb.display())
        })
        .collect()
}

/// Grabs a free loopback port by binding and immediately releasing it.
/// (The harness re-binds it; the window is tiny and the tests retry.)
fn free_addr() -> SocketAddr {
    let l = TcpListener::bind("127.0.0.1:0").expect("bind :0");
    l.local_addr().expect("local addr")
}

struct ShardProc {
    child: Child,
}

impl ShardProc {
    /// Spawns `shard_harness` and waits for its `serving on` banner.
    fn spawn(addr: SocketAddr, trees: &str, shard_id: u16, faults: Option<&str>) -> ShardProc {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_shard_harness"));
        cmd.arg("--addr")
            .arg(addr.to_string())
            .arg("--trees")
            .arg(trees)
            .arg("--shard-id")
            .arg(shard_id.to_string())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        if let Some(spec) = faults {
            cmd.arg("--inject-faults").arg(spec);
        }
        let mut child = cmd.spawn().expect("spawn shard_harness");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read banner");
        assert!(
            line.starts_with("serving on "),
            "unexpected harness banner: {line:?}"
        );
        ShardProc { child }
    }

    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ShardProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn router_over(plan: &ShardPlan, addrs: &[SocketAddr]) -> Router {
    let shards = plan
        .shards
        .iter()
        .zip(addrs)
        .map(|(spec, &addr)| ShardAddr {
            id: spec.id,
            addr,
            x_lo: spec.x_lo,
            x_hi: spec.x_hi,
        })
        .collect();
    Router::start(RouterConfig {
        shards,
        health: HealthPolicy {
            down_after: 2,
            probe_interval: Duration::from_millis(200),
        },
        ..RouterConfig::default()
    })
    .expect("bind router")
}

/// A full-extent window answered by the router: `Ok(oids)` when complete,
/// `Err(missing)` with the missing shard ids when partial. Anything else
/// panics.
fn full_window(client: &mut Client, rect: Rect, deadline_ms: u32) -> Result<Vec<u64>, Vec<u16>> {
    match client.window(0, rect, deadline_ms) {
        Ok(mut oids) => {
            oids.sort_unstable();
            Ok(oids)
        }
        Err(ClientError::Unexpected(r)) => match *r {
            Response::Partial {
                missing_shards,
                inner,
            } => {
                assert!(
                    matches!(*inner, Response::Entries(_)),
                    "partial wraps a non-window payload: {inner:?}"
                );
                Err(missing_shards)
            }
            other => panic!("unexpected response: {other:?}"),
        },
        Err(e) => panic!("transport error through router: {e}"),
    }
}

fn metric_value(text: &str, series: &str) -> f64 {
    text.lines()
        .find_map(|l| l.strip_prefix(series))
        .and_then(|rest| rest.trim().parse().ok())
        .unwrap_or_else(|| panic!("metric {series} not found in:\n{text}"))
}

#[test]
fn killed_shard_degrades_to_partial_and_rejoins_after_restart() {
    let (items1, items2) = items();
    let dir = scratch("kill");
    let plan = plan_shards(&items1, &items2, 3);
    let tree_args = write_shard_trees(&dir, &plan, &items1, &items2);
    let addrs: Vec<SocketAddr> = (0..3).map(|_| free_addr()).collect();
    let mut procs: Vec<Option<ShardProc>> = (0..3)
        .map(|i| {
            Some(ShardProc::spawn(
                addrs[i],
                &tree_args[i],
                plan.shards[i].id,
                None,
            ))
        })
        .collect();
    let router = router_over(&plan, &addrs);
    let mut client = Client::connect(router.local_addr()).expect("connect router");

    let mbr = world_mbr(&items1);
    let everything = Rect::new(mbr.xl - 1.0, mbr.yl - 1.0, mbr.xu + 1.0, mbr.yu + 1.0);
    let mut want_all: Vec<u64> = items1.iter().map(|&(_, oid)| oid).collect();
    want_all.sort_unstable();

    // Healthy cluster answers in full.
    assert_eq!(
        full_window(&mut client, everything, 0),
        Ok(want_all.clone())
    );

    // SIGKILL the middle shard: full-extent reads degrade to Partial
    // naming exactly that shard, within the deadline, promptly.
    procs[1].take().expect("shard 1 running").kill();
    let t0 = Instant::now();
    let missing = loop {
        match full_window(&mut client, everything, 1_000) {
            Err(missing) => break missing,
            Ok(_) => assert!(
                t0.elapsed() < Duration::from_secs(10),
                "router never noticed the killed shard"
            ),
        }
    };
    assert_eq!(missing, vec![plan.shards[1].id]);

    // Windows confined to a surviving shard's slab still answer in full:
    // the dead shard is not even consulted.
    let lo2 = plan.shards[2].x_lo;
    let margin = (mbr.xu - lo2).max(0.0) * 0.05;
    let safe = Rect::new(lo2 + margin, mbr.yl - 1.0, mbr.xu + 1.0, mbr.yu + 1.0);
    let mut want_safe: Vec<u64> = items1
        .iter()
        .filter(|(r, _)| r.intersects(&safe))
        .map(|&(_, oid)| oid)
        .collect();
    want_safe.sort_unstable();
    assert_eq!(
        full_window(&mut client, safe, 1_000),
        Ok(want_safe),
        "a window inside shard 2's slab must not degrade"
    );

    // Restart the shard on the same address: the router's prober must
    // bring it back without a restart on our side.
    procs[1] = Some(ShardProc::spawn(
        addrs[1],
        &tree_args[1],
        plan.shards[1].id,
        None,
    ));
    let t0 = Instant::now();
    loop {
        match full_window(&mut client, everything, 1_000) {
            Ok(oids) => {
                assert_eq!(oids, want_all);
                break;
            }
            Err(_) => {
                assert!(
                    t0.elapsed() < Duration::from_secs(20),
                    "restarted shard never rejoined"
                );
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }

    // The router's own metrics recorded the round trip.
    let metrics = client.metrics().expect("router metrics");
    let down = metric_value(&metrics, "psj_router_shard_down_total{shard=\"1\"} ");
    let probes = metric_value(&metrics, "psj_router_shard_probes_total{shard=\"1\"} ");
    let recovered = metric_value(&metrics, "psj_router_shard_recovered_total{shard=\"1\"} ");
    assert!(down >= 1.0, "down transitions: {down}");
    assert!(probes >= 1.0, "probes: {probes}");
    assert!(recovered >= 1.0, "recoveries: {recovered}");
    assert!(metric_value(&metrics, "psj_router_partial_responses_total ") >= 1.0);

    router.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn faulty_shard_is_isolated_not_contagious() {
    let (items1, items2) = items();
    let dir = scratch("fault");
    let plan = plan_shards(&items1, &items2, 3);
    let tree_args = write_shard_trees(&dir, &plan, &items1, &items2);
    let addrs: Vec<SocketAddr> = (0..3).map(|_| free_addr()).collect();
    // Shard 1 flips every page checksum on cache fill: every query it
    // touches becomes a typed storage error.
    let _procs: Vec<ShardProc> = (0..3)
        .map(|i| {
            ShardProc::spawn(
                addrs[i],
                &tree_args[i],
                plan.shards[i].id,
                (i == 1).then_some("seed=7,flip=1.0"),
            )
        })
        .collect();
    let router = router_over(&plan, &addrs);
    let mut client = Client::connect(router.local_addr()).expect("connect router");
    let mbr = world_mbr(&items1);

    // Full-extent reads: shard 1 contributes nothing, the rest answer.
    let everything = Rect::new(mbr.xl - 1.0, mbr.yl - 1.0, mbr.xu + 1.0, mbr.yu + 1.0);
    let missing = full_window(&mut client, everything, 0).expect_err("must be partial");
    assert_eq!(missing, vec![plan.shards[1].id]);

    // Reads inside a clean shard's slab are untouched.
    let lo2 = plan.shards[2].x_lo;
    let margin = (mbr.xu - lo2).max(0.0) * 0.05;
    let safe = Rect::new(lo2 + margin, mbr.yl - 1.0, mbr.xu + 1.0, mbr.yu + 1.0);
    assert!(full_window(&mut client, safe, 0).is_ok());

    // A shard answering *typed* errors is reachable, so health-wise it
    // stays Healthy (0) — isolation is per-answer, not a demotion.
    let metrics = client.metrics().expect("router metrics");
    assert_eq!(
        metric_value(&metrics, "psj_router_shard_health{shard=\"1\"} "),
        0.0
    );

    router.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn black_holed_shard_hits_the_deadline_not_a_hang() {
    let (items1, items2) = items();
    let mbr = world_mbr(&items1);
    let mid = (mbr.xl + mbr.xu) / 2.0;

    // Shard 0: a real server owning everything. Shard 1: a listener that
    // accepts and reads but never replies — the worst kind of peer.
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            read_timeout: Duration::from_millis(50),
            ..ServeConfig::default()
        },
        vec![Arc::new(freeze(&items1)), Arc::new(freeze(&items2))],
    )
    .expect("bind shard 0");
    let hole = TcpListener::bind("127.0.0.1:0").expect("bind black hole");
    let hole_addr = hole.local_addr().expect("hole addr");
    std::thread::spawn(move || {
        for conn in hole.incoming() {
            let Ok(mut conn) = conn else { continue };
            std::thread::spawn(move || {
                let mut sink = [0u8; 1024];
                while let Ok(n) = conn.read(&mut sink) {
                    if n == 0 {
                        break;
                    }
                }
            });
        }
    });

    let router = Router::start(RouterConfig {
        shards: vec![
            ShardAddr {
                id: 0,
                addr: server.local_addr(),
                x_lo: f64::NEG_INFINITY,
                x_hi: f64::INFINITY,
            },
            ShardAddr {
                id: 1,
                addr: hole_addr,
                x_lo: mid,
                x_hi: f64::INFINITY,
            },
        ],
        ..RouterConfig::default()
    })
    .expect("bind router");
    let mut client = Client::connect(router.local_addr()).expect("connect router");

    let everything = Rect::new(mbr.xl - 1.0, mbr.yl - 1.0, mbr.xu + 1.0, mbr.yu + 1.0);
    let mut want: Vec<u64> = items1.iter().map(|&(_, oid)| oid).collect();
    want.sort_unstable();

    let t0 = Instant::now();
    match client.window(0, everything, 400) {
        Err(ClientError::Unexpected(r)) => match *r {
            Response::Partial {
                missing_shards,
                inner,
            } => {
                assert_eq!(missing_shards, vec![1]);
                let Response::Entries(mut oids) = *inner else {
                    panic!("partial wraps {inner:?}");
                };
                oids.sort_unstable();
                assert_eq!(oids, want, "shard 0's full answer must survive");
            }
            other => panic!("unexpected response: {other:?}"),
        },
        other => panic!("expected a partial answer, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "deadline-bounded scatter took {:?}",
        t0.elapsed()
    );

    router.stop();
    server.stop();
}
