//! Differential acceptance for the partition join engine: on every seeded
//! scenario, at every thread count and steal policy, the grid engine's
//! output must be byte-identical (after canonical sort) to the sequential
//! R-tree oracle AND to the R-tree executor — and its raw output sequence
//! must be identical across all schedules (deterministic merge). The suite
//! also locks the engine-selection optimizer's decisions and the
//! Tree-vs-raw-rectangle input equivalence.

use psj_core::native::{run_native_join, BufferConfig, NativeConfig};
use psj_core::{
    join_candidates, run_join, run_partition_join, select_engine, JoinEngine, PartitionInput,
    RectItem, RunControl, StealPolicy, TaskOrigin,
};
use psj_integration::harness::JoinScenario;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const POLICIES: [StealPolicy; 3] = [
    StealPolicy::Busiest,
    StealPolicy::RoundRobin,
    StealPolicy::Seeded,
];

fn sorted(mut pairs: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    pairs.sort_unstable();
    pairs
}

/// Sweeps the partition engine over threads × steal policies, asserting
/// (1) sorted-output equality with the sequential oracle, (2) raw output
/// sequence identical across every schedule, (3) exact reconciliation of
/// per-morsel traces with the run aggregates. Returns configs checked.
fn partition_sweep(scenario: &JoinScenario) -> usize {
    let name = scenario.name;
    let oracle = sorted(join_candidates(&scenario.a, &scenario.b).candidates);
    let mut first_sequence: Option<Vec<(u64, u64)>> = None;
    let mut checked = 0;
    for threads in THREADS {
        for steal in POLICIES {
            let mut cfg = NativeConfig::new(threads);
            cfg.refine = false;
            cfg.steal = steal;
            cfg.steal_seed = 0xC0FFEE;
            cfg.engine = JoinEngine::Partition;
            let res = run_join(&scenario.a, &scenario.b, &cfg);
            assert_eq!(res.engine, JoinEngine::Partition, "{name}: engine tag");
            assert_eq!(
                sorted(res.pairs.clone()),
                oracle,
                "{name}: partition threads={threads} {steal:?} diverged from oracle"
            );
            match &first_sequence {
                None => first_sequence = Some(res.pairs.clone()),
                Some(want) => assert_eq!(
                    &res.pairs, want,
                    "{name}: output sequence not deterministic at \
                     threads={threads} {steal:?}"
                ),
            }
            // Per-morsel traces must reconcile exactly with the aggregates.
            assert_eq!(res.task_traces.len(), res.morsels, "{name}: trace count");
            let (mut cands, mut rep, mut ded, mut steals) = (0u64, 0u64, 0u64, 0u64);
            for t in &res.task_traces {
                assert_eq!(t.engine, JoinEngine::Partition, "{name}: trace engine tag");
                cands += t.candidates;
                rep += t.replicated;
                ded += t.deduped;
                steals += u64::from(t.origin == TaskOrigin::Steal);
            }
            assert_eq!(cands, res.candidates, "{name}: candidate attribution");
            assert_eq!(rep, res.replicated, "{name}: replication attribution");
            assert_eq!(ded, res.deduped, "{name}: dedup attribution");
            assert_eq!(steals, res.steals, "{name}: steal attribution");
            checked += 1;
        }
    }
    checked
}

/// The R-tree executor and the partition engine must agree pair-for-pair
/// on the same inputs (both compared sorted; their native orders differ by
/// design — tree task order vs grid cell order).
fn engines_agree(scenario: &JoinScenario, threads: usize) {
    let mut cfg = NativeConfig::new(threads);
    cfg.refine = false;
    let rtree = run_native_join(&scenario.a, &scenario.b, &cfg);
    cfg.engine = JoinEngine::Partition;
    let part = run_join(&scenario.a, &scenario.b, &cfg);
    assert_eq!(
        sorted(rtree.pairs),
        sorted(part.pairs),
        "{}: engines disagree at {threads} threads",
        scenario.name
    );
    assert_eq!(rtree.candidates, part.candidates, "{}", scenario.name);
}

#[test]
fn paper_maps_partition_locks_to_oracle() {
    let scenario = JoinScenario::paper_maps("paper-maps", 1996, 0.02);
    let checked = partition_sweep(&scenario);
    assert_eq!(checked, THREADS.len() * POLICIES.len());
    engines_agree(&scenario, 4);
}

#[test]
fn dense_grid_partition_locks_to_oracle() {
    let scenario = JoinScenario::dense_grid("dense-grid", 1200, 0.5);
    partition_sweep(&scenario);
    engines_agree(&scenario, 8);
}

#[test]
fn clustered_partition_locks_to_oracle() {
    let scenario = JoinScenario::clustered("clustered", 42, 1500);
    partition_sweep(&scenario);
    engines_agree(&scenario, 4);
}

#[test]
fn disjoint_partition_yields_empty() {
    let scenario = JoinScenario::dense_grid("disjoint", 400, 5_000.0);
    let oracle = join_candidates(&scenario.a, &scenario.b).candidates;
    assert!(oracle.is_empty());
    let mut cfg = NativeConfig::new(4);
    cfg.refine = false;
    cfg.engine = JoinEngine::Partition;
    let res = run_join(&scenario.a, &scenario.b, &cfg);
    assert!(res.pairs.is_empty());
    assert_eq!(res.replicated, 0);
    assert_eq!(res.deduped, 0);
}

/// With refinement ON (exact geometry from the paper maps), both engines
/// must still agree: the partition engine carries leaf geometry refs
/// through replication, so the refinement step sees the same polylines.
#[test]
fn refined_paper_maps_engines_agree() {
    let scenario = JoinScenario::paper_maps("paper-maps-refined", 77, 0.02);
    let mut cfg = NativeConfig::new(4);
    cfg.refine = true;
    let rtree = run_native_join(&scenario.a, &scenario.b, &cfg);
    cfg.engine = JoinEngine::Partition;
    let part = run_join(&scenario.a, &scenario.b, &cfg);
    assert_eq!(
        sorted(rtree.pairs),
        sorted(part.pairs),
        "refined outputs diverge"
    );
}

/// Joining a tree against the same relation streamed as raw rectangles
/// must produce the identical (filter-step) result: the unindexed side
/// loses only geometry, never MBRs or oids.
#[test]
fn raw_rect_stream_equals_indexed_side() {
    let scenario = JoinScenario::clustered("tree-vs-rects", 9, 1200);
    let items: Vec<RectItem> = scenario
        .b
        .window_query(&scenario.b.mbr())
        .into_iter()
        .map(|e| RectItem {
            mbr: e.mbr,
            oid: e.oid,
        })
        .collect();
    let mut cfg = NativeConfig::new(4);
    cfg.refine = false;
    let oracle = sorted(join_candidates(&scenario.a, &scenario.b).candidates);
    for threads in [1, 4] {
        cfg.num_threads = threads;
        let res = run_partition_join(
            PartitionInput::Tree(&scenario.a),
            PartitionInput::Rects(&items),
            &cfg,
        );
        assert_eq!(sorted(res.pairs), oracle, "threads={threads}");
    }
}

/// The Auto policy's decisions: small inputs stay on the index, dense
/// in-memory joins go to the grid, and any genuinely out-of-core
/// configuration (cache smaller than the working set) is forced back to
/// the R-tree engine — the only one that honors the buffer.
#[test]
fn auto_selection_picks_sensible_engines() {
    let ctl = RunControl::default();

    // Dense in-memory workload: grid wins, Auto must pick it.
    let dense = JoinScenario::dense_grid("auto-dense", 4000, 0.5);
    let mut cfg = NativeConfig::new(4);
    cfg.refine = false;
    assert_eq!(
        select_engine(&dense.a, &dense.b, &cfg, &ctl),
        JoinEngine::Partition
    );
    cfg.engine = JoinEngine::Auto;
    let res = run_join(&dense.a, &dense.b, &cfg);
    assert_eq!(
        res.engine,
        JoinEngine::Partition,
        "result reports the resolved engine"
    );
    assert_eq!(
        sorted(res.pairs),
        sorted(join_candidates(&dense.a, &dense.b).candidates),
        "auto-dispatched run still matches the oracle"
    );

    // Tiny workload: planning a grid costs more than the whole tree join.
    let small = JoinScenario::dense_grid("auto-small", 300, 0.5);
    assert_eq!(
        select_engine(&small.a, &small.b, &cfg, &ctl),
        JoinEngine::RTree
    );

    // Disjoint universes: nothing to partition.
    let disjoint = JoinScenario::dense_grid("auto-disjoint", 5000, 9_000.0);
    assert_eq!(
        select_engine(&disjoint.a, &disjoint.b, &cfg, &ctl),
        JoinEngine::RTree
    );

    // Out-of-core: a buffer smaller than the working set pins the R-tree
    // engine, and the dispatched run must still honor it (stats present).
    let total = dense.total_pages();
    let mut buffered = NativeConfig::buffered(4, BufferConfig::global(total / 10));
    buffered.refine = false;
    buffered.engine = JoinEngine::Auto;
    assert_eq!(
        select_engine(&dense.a, &dense.b, &buffered, &ctl),
        JoinEngine::RTree
    );
    let res = run_join(&dense.a, &dense.b, &buffered);
    assert_eq!(res.engine, JoinEngine::RTree);
    assert!(res.buffer.is_some(), "buffered run reports cache stats");
    assert_eq!(
        sorted(res.pairs),
        sorted(join_candidates(&dense.a, &dense.b).candidates)
    );

    // A roomy buffer (everything fits) no longer forces the index.
    let mut roomy = NativeConfig::buffered(4, BufferConfig::global(total * 2));
    roomy.refine = false;
    assert_eq!(
        select_engine(&dense.a, &dense.b, &roomy, &ctl),
        JoinEngine::Partition
    );
}
