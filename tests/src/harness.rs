//! Differential test harness: locks every join executor to the sequential
//! oracle.
//!
//! A [`Scenario`](JoinScenario) is a seeded, reproducible pair of indexed
//! relations. [`differential_run`] computes the sequential [BKS 93] answer
//! once and then replays the same join through the simulated executor (all
//! processor counts × assignments × buffer organizations the caller lists)
//! and the native executor (thread counts × assignments × buffer
//! organizations × cache budgets down to near-thrashing), asserting that
//! every configuration produces *exactly* the oracle's result set. Any
//! divergence panics with the configuration that broke.
//!
//! The harness compares *sets* of `(oid_a, oid_b)` pairs: parallel execution
//! legitimately permutes the output order, but never its contents.

use psj_core::native::{run_native_join, BufferConfig, NativeConfig};
use psj_core::{join_candidates, run_sim_join, Assignment, BufferOrg, SimConfig};
use psj_datagen::{MapObject, Scenario};
use psj_rtree::{PagedTree, RTree};
use std::collections::{BTreeSet, HashMap};

/// A reproducible join workload: everything derives from `name` + `seed`.
pub struct JoinScenario {
    /// Human-readable label used in failure messages.
    pub name: &'static str,
    /// Tree A.
    pub a: PagedTree,
    /// Tree B.
    pub b: PagedTree,
}

/// Indexes a generated map into a frozen paged tree with exact geometry.
pub fn index_map(objects: &[MapObject]) -> PagedTree {
    let mut t = RTree::new();
    for o in objects {
        t.insert(o.mbr(), o.oid);
    }
    let geoms: HashMap<u64, psj_geom::Polyline> =
        objects.iter().map(|o| (o.oid, o.geom.clone())).collect();
    PagedTree::freeze(&t, move |oid| geoms.get(&oid).cloned())
}

impl JoinScenario {
    /// A scaled-down instance of the paper's map workload (seeded polyline
    /// maps with realistic clustering).
    pub fn paper_maps(name: &'static str, seed: u64, scale: f64) -> Self {
        let (m1, m2) = Scenario::scaled(seed, scale).generate();
        JoinScenario {
            name,
            a: index_map(&m1),
            b: index_map(&m2),
        }
    }

    /// A dense uniform grid of overlapping unit squares — high selectivity,
    /// every node pair qualifies near the diagonal.
    pub fn dense_grid(name: &'static str, n: usize, shift: f64) -> Self {
        let build = |offset: f64| {
            let mut t = RTree::new();
            for i in 0..n {
                let x = (i % 40) as f64 + offset;
                let y = (i / 40) as f64 + offset;
                t.insert(psj_geom::Rect::new(x, y, x + 1.2, y + 1.2), i as u64);
            }
            PagedTree::freeze(&t, |_| None)
        };
        JoinScenario {
            name,
            a: build(0.0),
            b: build(shift),
        }
    }

    /// Two sparse clustered point sets with partial overlap — exercises
    /// empty subtree pruning and unbalanced task sizes.
    pub fn clustered(name: &'static str, seed: u64, n: usize) -> Self {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut build = |centers: &[(f64, f64)]| {
            let mut t = RTree::new();
            for i in 0..n {
                let (cx, cy) = centers[i % centers.len()];
                let x = cx + rng.random_range(-8.0..8.0);
                let y = cy + rng.random_range(-8.0..8.0);
                let w = rng.random_range(0.1..1.5);
                t.insert(psj_geom::Rect::new(x, y, x + w, y + w), i as u64);
            }
            PagedTree::freeze(&t, |_| None)
        };
        let a = build(&[(0.0, 0.0), (60.0, 10.0), (25.0, 70.0)]);
        let b = build(&[(5.0, 3.0), (58.0, 14.0), (100.0, 100.0)]);
        JoinScenario { name, a, b }
    }

    /// Total serialized pages of both trees — the working set an out-of-core
    /// run has to stream through.
    pub fn total_pages(&self) -> usize {
        self.a.pages().len() + self.b.pages().len()
    }
}

/// The set of `(oid_a, oid_b)` pairs an executor produced.
pub type PairSet = BTreeSet<(u64, u64)>;

fn as_set(pairs: &[(u64, u64)]) -> PairSet {
    pairs.iter().copied().collect()
}

/// Which executor configurations [`differential_run`] sweeps.
pub struct Sweep {
    /// Worker/processor counts.
    pub threads: Vec<usize>,
    /// Task assignment strategies.
    pub assignments: Vec<Assignment>,
    /// Native cache budgets as fractions of the scenario's working set
    /// (e.g. `0.1` = a cache holding 10% of all pages). A minimum of
    /// 4 pages is enforced so shards stay non-empty.
    pub cache_fractions: Vec<f64>,
    /// Whether to also run the simulated executor (slower).
    pub simulate: bool,
}

impl Sweep {
    /// The full grid used by the cross-executor tests.
    pub fn full() -> Self {
        Sweep {
            threads: vec![1, 2, 4, 8],
            assignments: vec![
                Assignment::Dynamic,
                Assignment::StaticRange,
                Assignment::StaticRoundRobin,
            ],
            // From "everything fits" down to near-thrashing.
            cache_fractions: vec![2.0, 0.5, 0.1, 0.02],
            simulate: true,
        }
    }

    /// A cheaper grid for scenarios that are expensive to join.
    pub fn quick() -> Self {
        Sweep {
            threads: vec![1, 4],
            assignments: vec![Assignment::Dynamic, Assignment::StaticRange],
            cache_fractions: vec![0.5, 0.05],
            simulate: false,
        }
    }
}

/// Statistics about one differential run, for reporting.
#[derive(Debug, Default)]
pub struct DifferentialReport {
    /// Number of result pairs in the oracle answer.
    pub oracle_pairs: usize,
    /// Executor configurations checked (each compared pair-for-pair).
    pub configs_checked: usize,
    /// Total cache misses observed across all buffered native runs.
    pub total_misses: u64,
    /// Smallest cache capacity (pages) any passing run used.
    pub smallest_cache: usize,
}

/// Runs `scenario` through the oracle, the simulator, and the native
/// executor under every configuration in `sweep`, panicking on the first
/// mismatch. Returns summary statistics.
pub fn differential_run(scenario: &JoinScenario, sweep: &Sweep) -> DifferentialReport {
    let name = scenario.name;
    let oracle = as_set(&join_candidates(&scenario.a, &scenario.b).candidates);
    let mut report = DifferentialReport {
        oracle_pairs: oracle.len(),
        smallest_cache: usize::MAX,
        ..Default::default()
    };

    // Simulated executor: processors × assignments × buffer organizations.
    if sweep.simulate {
        for &n in &sweep.threads {
            for &assignment in &sweep.assignments {
                for org in [BufferOrg::Local, BufferOrg::Global] {
                    let mut cfg = SimConfig::best(n, n, 24.max(4 * n));
                    cfg.assignment = assignment;
                    cfg.buffer_org = org;
                    cfg.collect_candidates = true;
                    let res = run_sim_join(&scenario.a, &scenario.b, &cfg);
                    let got = as_set(res.candidates.as_deref().expect("candidates collected"));
                    assert_eq!(
                        got, oracle,
                        "{name}: sim n={n} {assignment:?} {org:?} diverged from oracle"
                    );
                    report.configs_checked += 1;
                }
            }
        }
    }

    // Native executor, unbuffered.
    for &threads in &sweep.threads {
        for &assignment in &sweep.assignments {
            let mut cfg = NativeConfig::new(threads);
            cfg.assignment = assignment;
            cfg.refine = false;
            let res = run_native_join(&scenario.a, &scenario.b, &cfg);
            assert_eq!(
                as_set(&res.pairs),
                oracle,
                "{name}: native threads={threads} {assignment:?} unbuffered diverged"
            );
            report.configs_checked += 1;
        }
    }

    // Native executor, out-of-core: organizations × budgets down to
    // near-thrashing.
    let total = scenario.total_pages();
    for &threads in &sweep.threads {
        for &assignment in &sweep.assignments {
            for org in [BufferOrg::Local, BufferOrg::Global] {
                for &fraction in &sweep.cache_fractions {
                    let capacity = ((total as f64 * fraction) as usize).max(4);
                    let buffer = BufferConfig {
                        org,
                        capacity_pages: capacity,
                        shards: 4,
                        policy: psj_buffer::Policy::Lru,
                    };
                    let mut cfg = NativeConfig::buffered(threads, buffer);
                    cfg.assignment = assignment;
                    cfg.refine = false;
                    let res = run_native_join(&scenario.a, &scenario.b, &cfg);
                    assert_eq!(
                        as_set(&res.pairs),
                        oracle,
                        "{name}: native threads={threads} {assignment:?} {org:?} \
                         cache={capacity}p diverged"
                    );
                    let stats = res.buffer.expect("buffered run must report stats");
                    // A join that creates tasks must touch pages; disjoint
                    // trees legitimately create none.
                    assert!(
                        res.tasks == 0 || stats.requests() > 0,
                        "{name}: buffered run reported no page requests"
                    );
                    report.total_misses += stats.misses;
                    report.smallest_cache = report.smallest_cache.min(capacity);
                    report.configs_checked += 1;
                }
            }
        }
    }

    report
}
