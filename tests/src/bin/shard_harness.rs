//! A minimal shard server process for cluster robustness tests.
//!
//! The tests need real OS processes they can SIGKILL and restart without
//! taking a dependency on the CLI crate's binary (Cargo only exposes
//! `CARGO_BIN_EXE_*` paths for binaries in the same package). This wraps
//! `psj_serve::Server` with just enough argument parsing to serve tree
//! files at an address, optionally with injected storage faults.
//!
//! ```text
//! shard_harness --addr 127.0.0.1:7001 --trees a.psjt,b.psjt --shard-id 1
//!               [--inject-faults seed=42,flip=1.0] [--lenient]
//! ```
//!
//! Prints `serving on <addr>` once the listener is bound, then blocks
//! until a Shutdown request (or a signal) arrives.

use psj_rtree::PagedTree;
use psj_serve::{ServeConfig, Server};
use psj_store::FaultPlan;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

fn die(msg: &str) -> ! {
    eprintln!("shard_harness: {msg}");
    std::process::exit(2);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = None;
    let mut trees_arg = None;
    let mut shard_id: u16 = 0;
    let mut fault = None;
    let mut lenient = false;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
                .clone()
        };
        match a.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--trees" => trees_arg = Some(value("--trees")),
            "--shard-id" => {
                shard_id = value("--shard-id")
                    .parse()
                    .unwrap_or_else(|_| die("bad --shard-id"))
            }
            "--inject-faults" => {
                let spec = value("--inject-faults");
                let plan = FaultPlan::parse(&spec).unwrap_or_else(|e| die(&e));
                fault = Some(Arc::new(plan));
            }
            "--lenient" => lenient = true,
            other => die(&format!("unknown argument: {other}")),
        }
    }
    let addr = addr.unwrap_or_else(|| die("--addr is required"));
    let trees_arg = trees_arg.unwrap_or_else(|| die("--trees is required"));

    let mut trees = Vec::new();
    for path in trees_arg.split(',').filter(|s| !s.is_empty()) {
        let t = if lenient {
            PagedTree::load_from_lenient(Path::new(path))
                .unwrap_or_else(|e| die(&format!("{path}: {e}")))
                .tree
        } else {
            PagedTree::load_from(Path::new(path)).unwrap_or_else(|e| die(&format!("{path}: {e}")))
        };
        trees.push(Arc::new(t));
    }

    let cfg = ServeConfig {
        addr,
        workers: 2,
        join_threads: 2,
        cache_pages: 2048,
        shard_id,
        fault,
        read_timeout: Duration::from_millis(100),
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, trees).unwrap_or_else(|e| die(&format!("bind: {e}")));
    println!("serving on {}", server.local_addr());
    server.wait();
}
