//! Integration test host crate; see `tests/` alongside this file.
//!
//! [`harness`] provides the differential machinery the cross-executor tests
//! use: seeded scenarios and a sweep runner that compares every executor
//! configuration against the sequential oracle.

pub mod harness;
