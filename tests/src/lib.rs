//! Integration test host crate; see `tests/` alongside this file.
